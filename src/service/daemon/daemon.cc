#include "daemon.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/trace_sink.hh"

namespace qtenon::service::daemon {

namespace {

struct DaemonMetrics {
    obs::Counter &requests =
        obs::counter("daemon.requests", "submit frames received");
    obs::Counter &served =
        obs::counter("daemon.served", "result frames sent");
    obs::Counter &rejected =
        obs::counter("daemon.rejected", "rejected submissions");
    obs::Counter &errors =
        obs::counter("daemon.errors", "error frames sent");
    obs::Gauge &clients =
        obs::gauge("daemon.clients.connected", "open connections");
    obs::Histogram &latency = obs::histogram(
        "daemon.request.latency_ns",
        "submit frame received -> response written");
    obs::Histogram &queueWait = obs::histogram(
        "daemon.request.queue_wait_ns",
        "admission -> popped by a submitter");
};

DaemonMetrics &
dmetrics()
{
    static DaemonMetrics m;
    return m;
}

std::uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
            .count());
}

/** Bind an AF_UNIX listening socket at @p path (unlinking stale
 *  sockets first); throws std::runtime_error on failure. */
int
bindListenSocket(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            "daemon: socket path empty or too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(
            std::string("daemon: socket(): ") +
            std::strerror(errno));
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("daemon: bind(" + path +
                                 "): " + std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        throw std::runtime_error(
            std::string("daemon: listen(): ") +
            std::strerror(err));
    }
    return fd;
}

} // namespace

Daemon::Connection::~Connection()
{
    if (fd >= 0)
        ::close(fd);
}

Daemon::Daemon(DaemonConfig cfg)
    : _cfg(std::move(cfg)),
      _sched(SchedulerConfig{_cfg.workers, _cfg.defaultTimeout}),
      _queue(AdmissionConfig{_cfg.maxQueueDepth,
                             _cfg.perClientQuota}),
      _cache(_cfg.cacheCapacity),
      _compileCache(_cfg.compileCacheCapacity)
{}

Daemon::~Daemon()
{
    if (_running.load() && !_stopped.load())
        stop();
}

void
Daemon::start()
{
    if (_running.exchange(true))
        throw std::logic_error("daemon: start() called twice");

    if (::pipe(_wakePipe) != 0)
        throw std::runtime_error(
            std::string("daemon: pipe(): ") +
            std::strerror(errno));
    _listenFd = bindListenSocket(_cfg.socketPath);

    const unsigned submitters = _sched.workers();
    _submitters.reserve(submitters);
    for (unsigned i = 0; i < submitters; ++i)
        _submitters.emplace_back([this] { submitterLoop(); });
    _acceptThread = std::thread([this] { acceptLoop(); });
}

void
Daemon::requestDrain()
{
    if (_draining.exchange(true))
        return;
    _queue.beginDrain();
    // Wake the accept loop's poll(); it closes the listen socket.
    if (_wakePipe[1] >= 0) {
        const char byte = 1;
        ssize_t n;
        do {
            n = ::write(_wakePipe[1], &byte, 1);
        } while (n < 0 && errno == EINTR);
    }
}

void
Daemon::join()
{
    std::lock_guard<std::mutex> lock(_joinMutex);
    if (_stopped.load())
        return;

    if (_acceptThread.joinable())
        _acceptThread.join();
    // Submitters exit once the queue is drained dry; every admitted
    // job has had its response written by then.
    for (auto &t : _submitters)
        if (t.joinable())
            t.join();
    _submitters.clear();

    // Shut the connections down so blocked readers see EOF, then
    // reap them.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> clock(_connMutex);
        conns.swap(_connections);
    }
    for (auto &c : conns) {
        c->open.store(false);
        ::shutdown(c->fd, SHUT_RDWR);
    }
    for (auto &c : conns)
        if (c->reader.joinable())
            c->reader.join();
    conns.clear();

    for (int *fd : {&_wakePipe[0], &_wakePipe[1]}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
    ::unlink(_cfg.socketPath.c_str());
    _stopped.store(true);
}

void
Daemon::stop()
{
    requestDrain();
    join();
}

void
Daemon::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{_listenFd, POLLIN, 0},
                         {_wakePipe[0], POLLIN, 0}};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (_draining.load() || (fds[1].revents & POLLIN))
            break;
        if (!(fds[0].revents & POLLIN))
            continue;

        int cfd = ::accept(_listenFd, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        auto conn = std::make_shared<Connection>();
        conn->fd = cfd;
        {
            std::lock_guard<std::mutex> lock(_connMutex);
            conn->id = ++_nextConnId;
            _connections.push_back(conn);
        }
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_connectionsAccepted;
        }
        dmetrics().clients.add(1);
        conn->reader =
            std::thread([this, conn] { readerLoop(conn); });
    }
    // Stop accepting: new connect() attempts fail immediately once
    // the listening socket is gone.
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }
}

void
Daemon::readerLoop(const std::shared_ptr<Connection> &conn)
{
    std::string payload;
    try {
        while (readFrame(conn->fd, payload))
            handleFrame(conn, payload);
    } catch (const std::exception &) {
        // Framing/I-O error: drop the connection. In-flight jobs
        // still complete; their responses hit the closed socket and
        // are discarded.
    }
    conn->open.store(false);
    dmetrics().clients.add(-1);
}

void
Daemon::handleFrame(const std::shared_ptr<Connection> &conn,
                    const std::string &payload)
{
    json::Value msg;
    std::string type;
    std::uint64_t id = 0;
    try {
        msg = json::Value::parse(payload);
        if (const auto *idv = msg.find("id"))
            id = idv->asUint();
        type = msg.at("type").asString();
    } catch (const std::exception &e) {
        json::Value err = json::Value::object();
        err.set("type", "error");
        err.set("id", id);
        err.set("error",
                std::string("malformed frame: ") + e.what());
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_errors;
        }
        dmetrics().errors.inc();
        sendJson(*conn, err);
        return;
    }

    if (type == "submit") {
        handleSubmit(conn, msg);
    } else if (type == "ping") {
        json::Value pong = json::Value::object();
        pong.set("type", "pong");
        pong.set("id", id);
        sendJson(*conn, pong);
    } else if (type == "stats") {
        json::Value s = statsJson();
        s.set("id", id);
        sendJson(*conn, s);
    } else if (type == "shutdown") {
        json::Value bye = json::Value::object();
        bye.set("type", "shutting_down");
        bye.set("id", id);
        sendJson(*conn, bye);
        requestDrain();
    } else {
        json::Value err = json::Value::object();
        err.set("type", "error");
        err.set("id", id);
        err.set("error", "unknown message type: " + type);
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_errors;
        }
        dmetrics().errors.inc();
        sendJson(*conn, err);
    }
}

void
Daemon::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const json::Value &msg)
{
    const auto received = std::chrono::steady_clock::now();
    std::uint64_t id = 0;
    if (const auto *idv = msg.find("id"))
        id = idv->asUint();
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        ++_requests;
    }
    dmetrics().requests.inc();

    Pending pending;
    Priority priority = Priority::Normal;
    try {
        if (const auto *pv = msg.find("priority"))
            priority = priorityFromName(pv->asString());
        JobRequest req = JobRequest::fromJson(msg.at("job"));
        pending.conn = conn;
        pending.requestId = id;
        pending.client = req.client.empty()
            ? "conn-" + std::to_string(conn->id)
            : req.client;
        pending.key = cacheKeyOf(req);
        pending.spec = req.toJobSpec();
        // Structural compiles are shared across submissions; only
        // the cache pointer changes, never the compile mode, so
        // result bytes are identical with the cache on or off.
        pending.spec.compileCache = &_compileCache;
        pending.received = received;
    } catch (const std::exception &e) {
        json::Value err = json::Value::object();
        err.set("type", "error");
        err.set("id", id);
        err.set("error", std::string(e.what()));
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_errors;
        }
        dmetrics().errors.inc();
        sendJson(*conn, err);
        return;
    }

    // Cache hits are served inline: they consume no compute, so
    // they bypass admission control entirely.
    if (_cache.enabled()) {
        if (auto bytes = _cache.lookup(pending.key)) {
            obs::ScopedSpan span("daemon.serve.hit", "daemon");
            sendResult(*conn, id, "hit", pending.key, *bytes);
            {
                std::lock_guard<std::mutex> lock(_statsMutex);
                ++_served;
            }
            dmetrics().served.inc();
            recordLatency(received);
            return;
        }
    }

    const std::string client = pending.client;
    const Admission verdict =
        _queue.push(std::move(pending), priority, client);
    if (verdict != Admission::Admitted) {
        json::Value rej = json::Value::object();
        rej.set("type", "rejected");
        rej.set("id", id);
        rej.set("reason", admissionReason(verdict));
        switch (verdict) {
        case Admission::RejectedQueueFull:
            rej.set("detail",
                    "admission queue at capacity; retry later");
            {
                std::lock_guard<std::mutex> lock(_statsMutex);
                ++_rejectedQueueFull;
            }
            break;
        case Admission::RejectedQuota:
            rej.set("detail", "per-client in-flight quota reached");
            {
                std::lock_guard<std::mutex> lock(_statsMutex);
                ++_rejectedQuota;
            }
            break;
        case Admission::RejectedDraining:
            rej.set("detail", "daemon is draining");
            {
                std::lock_guard<std::mutex> lock(_statsMutex);
                ++_rejectedDraining;
            }
            break;
        case Admission::Admitted:
            break;
        }
        dmetrics().rejected.inc();
        sendJson(*conn, rej);
        recordLatency(received);
    }
    // Admitted: the response is written by a submitter.
}

void
Daemon::submitterLoop()
{
    Pending p;
    while (_queue.pop(p)) {
        dmetrics().queueWait.record(nsSince(p.received));

        JobResult r;
        try {
            obs::ScopedSpan span("daemon.serve.miss", "daemon");
            JobHandle handle = _sched.submit(std::move(p.spec));
            r = handle.result.get();
        } catch (const std::exception &e) {
            r.status = JobStatus::Failed;
            r.error = e.what();
        }

        // Normalize the identity fields the daemon assigned, so the
        // serialized bytes depend only on the request content — the
        // cache's byte-identity contract.
        r.jobId = 0;
        r.name.clear();
        const std::string bytes =
            jobResultToJson(r, /*deterministic_only=*/true).dump(0);
        if (r.status == JobStatus::Ok)
            _cache.insert(p.key, bytes);

        if (p.conn->open.load()) {
            try {
                sendResult(*p.conn, p.requestId, "miss", p.key,
                           bytes);
            } catch (const std::exception &) {
                // Client went away; the result is still cached.
            }
        }
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_served;
        }
        dmetrics().served.inc();
        recordLatency(p.received);
        _queue.release(p.client);
        p = Pending{};
    }
}

void
Daemon::sendPayload(Connection &conn, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    writeFrame(conn.fd, payload);
}

void
Daemon::sendJson(Connection &conn, const json::Value &v)
{
    try {
        sendPayload(conn, v.dump(0));
    } catch (const std::exception &) {
        conn.open.store(false);
    }
}

void
Daemon::sendResult(Connection &conn, std::uint64_t request_id,
                   const char *cache_state, const CacheKey &key,
                   const std::string &result_bytes)
{
    // Splice the serialized result bytes into the envelope verbatim:
    // a cache hit replays exactly what the recompute produced.
    std::string payload;
    payload.reserve(result_bytes.size() + 96);
    payload += "{\"type\":\"result\",\"id\":";
    payload += std::to_string(request_id);
    payload += ",\"cache\":\"";
    payload += cache_state;
    payload += "\",\"key\":\"";
    payload += key.hex();
    payload += "\",\"result\":";
    payload += result_bytes;
    payload += "}";
    sendPayload(conn, payload);
}

void
Daemon::recordLatency(std::chrono::steady_clock::time_point received)
{
    dmetrics().latency.record(nsSince(received));
}

json::Value
Daemon::statsJson() const
{
    const DaemonStats s = stats();
    json::Value v = json::Value::object();
    v.set("type", "stats");
    v.set("workers", s.workers);
    v.set("draining", s.draining);
    v.set("connections", s.connections);
    v.set("requests", s.requests);
    v.set("served", s.served);
    v.set("queue_depth",
          static_cast<std::uint64_t>(s.queueDepth));
    json::Value rej = json::Value::object();
    rej.set("queue_full", s.rejectedQueueFull);
    rej.set("quota", s.rejectedQuota);
    rej.set("draining", s.rejectedDraining);
    v.set("rejected", std::move(rej));
    v.set("errors", s.errors);
    json::Value cache = json::Value::object();
    cache.set("hits", s.cache.hits);
    cache.set("misses", s.cache.misses);
    cache.set("inserts", s.cache.inserts);
    cache.set("evictions", s.cache.evictions);
    cache.set("entries",
              static_cast<std::uint64_t>(s.cache.entries));
    cache.set("capacity",
              static_cast<std::uint64_t>(s.cache.capacity));
    cache.set("hit_rate", s.cache.hitRate());
    v.set("cache", std::move(cache));
    const auto cc = _compileCache.stats();
    json::Value ccv = json::Value::object();
    ccv.set("hits", cc.hits);
    ccv.set("misses", cc.misses);
    ccv.set("inserts", cc.inserts);
    ccv.set("evictions", cc.evictions);
    ccv.set("entries", static_cast<std::uint64_t>(cc.entries));
    ccv.set("capacity", static_cast<std::uint64_t>(cc.capacity));
    ccv.set("hit_rate", cc.hitRate());
    v.set("compile_cache", std::move(ccv));
    return v;
}

DaemonStats
Daemon::stats() const
{
    DaemonStats s;
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        s.connections = _connectionsAccepted;
        s.requests = _requests;
        s.served = _served;
        s.rejectedQueueFull = _rejectedQueueFull;
        s.rejectedQuota = _rejectedQuota;
        s.rejectedDraining = _rejectedDraining;
        s.errors = _errors;
    }
    s.cache = _cache.stats();
    s.queueDepth = _queue.depth();
    s.workers = _sched.workers();
    s.draining = _draining.load();
    return s;
}

} // namespace qtenon::service::daemon
