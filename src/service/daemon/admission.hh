/**
 * @file
 * The daemon's admission-controlled job queue: three priority bands
 * (drained high to low, FIFO within a band), a bounded total depth,
 * and per-client in-flight quotas.
 *
 * Admission is decided at push time and is explicit — a rejected
 * submission gets a typed reason (the daemon turns it into a
 * REJECTED protocol frame) instead of unbounded queueing or a
 * silently dropped request. A client's quota covers everything it
 * has been admitted for that has not finished yet (queued *and*
 * executing), so one aggressive client cannot monopolize the worker
 * pool; the daemon calls release() when the response has been sent.
 *
 * Drain protocol: beginDrain() flips the queue into its terminal
 * state — every later push is rejected with Draining, while pop()
 * keeps handing out already-admitted work until the queue is empty
 * and then returns false (forever). Consumers treat that false as
 * "exit your loop"; the daemon then waits for in-flight jobs and
 * shuts down. Admitted work is never thrown away: graceful drain
 * means everything accepted before SIGTERM still completes and gets
 * its response.
 *
 * Thread-safe; templated on the queued payload so the scheduling
 * policy is unit-testable without a daemon around it.
 */

#ifndef QTENON_SERVICE_DAEMON_ADMISSION_HH
#define QTENON_SERVICE_DAEMON_ADMISSION_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hh"
#include "protocol.hh"

namespace qtenon::service::daemon {

/** Outcome of one admission decision. */
enum class Admission {
    Admitted,
    /** The bounded queue is at capacity. */
    RejectedQueueFull,
    /** The client is at its in-flight quota. */
    RejectedQuota,
    /** The daemon is draining and accepts no new work. */
    RejectedDraining,
};

/** Protocol "reason" string for a rejection. */
inline const char *
admissionReason(Admission a)
{
    switch (a) {
    case Admission::RejectedQueueFull:
        return "queue_full";
    case Admission::RejectedQuota:
        return "quota";
    case Admission::RejectedDraining:
        return "draining";
    case Admission::Admitted:
        break;
    }
    return "admitted";
}

/** Queue limits. */
struct AdmissionConfig {
    /** Max queued (not yet popped) entries across all bands. */
    std::size_t maxQueueDepth = 64;
    /** Max admitted-but-unreleased entries per client. */
    std::size_t perClientQuota = 16;
};

template <typename T>
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(AdmissionConfig cfg = AdmissionConfig{})
        : _cfg(cfg)
    {}

    /**
     * Decide admission for @p item from @p client at @p priority.
     * On Admitted the item is queued and the client's in-flight
     * count is charged; any rejection leaves no state behind.
     */
    Admission
    push(T item, Priority priority, const std::string &client)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_draining)
            return Admission::RejectedDraining;
        if (_cfg.perClientQuota == 0 ||
            _inFlight[client] >= _cfg.perClientQuota) {
            // Don't let the probe insert grow the map forever.
            if (_inFlight[client] == 0)
                _inFlight.erase(client);
            return Admission::RejectedQuota;
        }
        if (depthLocked() >= _cfg.maxQueueDepth)
            return Admission::RejectedQueueFull;
        ++_inFlight[client];
        band(priority).push_back(std::move(item));
        depthGauge().set(
            static_cast<std::int64_t>(depthLocked()));
        _available.notify_one();
        return Admission::Admitted;
    }

    /**
     * Block until an entry is available or the queue is drained dry.
     * Returns false only in the terminal drained-and-empty state.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _available.wait(lock, [this] {
            return depthLocked() > 0 || _draining;
        });
        for (auto *q : {&_high, &_normal, &_low}) {
            if (!q->empty()) {
                out = std::move(q->front());
                q->pop_front();
                depthGauge().set(
                    static_cast<std::int64_t>(depthLocked()));
                return true;
            }
        }
        return false; // draining and empty
    }

    /** Return one unit of @p client's quota (job finished). */
    void
    release(const std::string &client)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _inFlight.find(client);
        if (it == _inFlight.end())
            return;
        if (--it->second == 0)
            _inFlight.erase(it);
    }

    /** Enter the terminal draining state (idempotent). */
    void
    beginDrain()
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _draining = true;
        _available.notify_all();
    }

    bool
    draining() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _draining;
    }

    /** Currently queued (not yet popped) entries. */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return depthLocked();
    }

    /** Admitted-but-unreleased entries for @p client. */
    std::size_t
    inFlight(const std::string &client) const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _inFlight.find(client);
        return it == _inFlight.end() ? 0 : it->second;
    }

    const AdmissionConfig &config() const { return _cfg; }

  private:
    std::size_t
    depthLocked() const
    {
        return _high.size() + _normal.size() + _low.size();
    }

    std::deque<T> &
    band(Priority p)
    {
        switch (p) {
        case Priority::High:
            return _high;
        case Priority::Low:
            return _low;
        case Priority::Normal:
            break;
        }
        return _normal;
    }

    static obs::Gauge &
    depthGauge()
    {
        static auto &g = obs::gauge("daemon.queue.depth",
                                    "admitted jobs awaiting a "
                                    "submitter");
        return g;
    }

    AdmissionConfig _cfg;
    mutable std::mutex _mutex;
    std::condition_variable _available;
    std::deque<T> _high;
    std::deque<T> _normal;
    std::deque<T> _low;
    std::map<std::string, std::size_t> _inFlight;
    bool _draining = false;
};

} // namespace qtenon::service::daemon

#endif // QTENON_SERVICE_DAEMON_ADMISSION_HH
