/**
 * @file
 * The qtenond wire protocol: length-prefixed JSON frames over a
 * local stream socket.
 *
 * Framing: each message is a 4-byte big-endian payload length
 * followed by that many bytes of UTF-8 JSON (one object per frame).
 * Frames above `maxFrameBytes` are a protocol error — the daemon
 * must never let one client make it allocate unboundedly.
 *
 * Message types (the "type" member of every frame):
 *
 *   client -> daemon
 *     "submit"    one VQA job request (see JobRequest), with a
 *                 client-chosen "id" echoed on every reply
 *     "ping"      liveness probe
 *     "stats"     daemon counters snapshot
 *     "shutdown"  request graceful drain (admin)
 *
 *   daemon -> client
 *     "result"         {"id", "cache": "hit"|"miss", "key": <hex>,
 *                       "result": <job-result object>}
 *     "rejected"       {"id", "reason": "queue_full"|"quota"|
 *                       "draining", "detail"}
 *     "error"          {"id"?, "error"} — malformed request
 *     "pong", "stats", "shutting_down"
 *
 * The "result" member is the deterministic serialization of the
 * JobResult (service::jobResultToJson with wall-clock fields
 * dropped and job id / name normalized to 0 / ""), which is the
 * byte-identity contract of the result cache: a cache hit replays
 * exactly the bytes a recompute would produce.
 */

#ifndef QTENON_SERVICE_DAEMON_PROTOCOL_HH
#define QTENON_SERVICE_DAEMON_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/job.hh"
#include "service/json.hh"

namespace qtenon::service::daemon {

/** Hard cap on one frame's payload (request or response). */
constexpr std::size_t maxFrameBytes = 64u << 20;

/**
 * Write one length-prefixed frame to @p fd. Thread-compatible (the
 * caller serializes writers per fd). Throws std::runtime_error on
 * I/O errors or oversize payloads.
 */
void writeFrame(int fd, const std::string &payload);

/**
 * Read one frame from @p fd into @p out. Returns false on clean EOF
 * at a frame boundary; throws std::runtime_error on I/O errors,
 * truncated frames, or oversize lengths.
 */
bool readFrame(int fd, std::string &out);

/** Submission priority classes, drained high to low. */
enum class Priority : std::uint8_t {
    High,
    Normal,
    Low,
};

const char *priorityName(Priority p);
/** Parse a priority name; throws std::invalid_argument. */
Priority priorityFromName(const std::string &name);

/**
 * One serving request: the declarative description of a VQA
 * evaluation a client submits. This is the unit the result cache
 * keys on — every member that can change the outcome participates
 * in canonicalText(), and the derived JobSpec always runs with the
 * request seed verbatim (deriveSeedFromJobId off), so identical
 * requests are bit-identical no matter which daemon worker count or
 * submission order produced them.
 */
struct JobRequest {
    /** Display name (excluded from the cache key). */
    std::string name = "job";
    /** Client identity for per-client quotas (excluded from key). */
    std::string client;

    /** "qaoa", "vqe", or "qnn". */
    std::string algorithm = "qaoa";
    std::uint32_t qubits = 8;
    /** Ansatz depth override; 0 keeps the paper default. */
    std::uint32_t layers = 0;
    std::uint64_t shots = 500;
    std::uint32_t iterations = 10;
    /** "gd" or "spsa". */
    std::string optimizer = "gd";
    std::uint64_t seed = 7;
    /** Functional engine name ("auto", "statevector", ...). */
    std::string backend = "auto";
    /** Statevector kernel instruction set ("auto" or "scalar"). */
    std::string svSimd = "auto";
    bool svFusion = false;
    /** Compile + replay with the wave-granular vector ISA
     *  (`--isa-vector`); off keeps the byte-stable scalar path. */
    bool isaVector = false;
    bool exactCost = false;
    double readoutError = 0.0;
    /** fault::FaultSpec textual form; empty = perfect links. */
    std::string faultSpec;
    /** Host models to replay on ("rocket", "boom-l"); empty = the
     *  default host only. */
    std::vector<std::string> hosts;
    bool runBaseline = false;
    /** Per-job deadline override in milliseconds (excluded from the
     *  key: it changes whether a result exists, not its content). */
    std::uint64_t timeoutMs = 0;

    /** As the "job" member of a submit frame. */
    json::Value toJson() const;
    /** Parse; throws std::invalid_argument on unknown fields'
     *  values or missing types. */
    static JobRequest fromJson(const json::Value &v);

    /**
     * The content-addressed identity of this request: the canonical
     * circuit IR + parameter table (built deterministically from
     * the workload config), the canonical driver config (backend,
     * seed, SIMD mode, fusion, shots, iterations, optimizer,
     * readout error, ...), the canonical fault spec, and the replay
     * plan. Building the workload is deterministic, so equal
     * requests always canonicalize equally.
     */
    std::string canonicalText() const;

    /** Expand into the JobSpec the scheduler runs. */
    JobSpec toJobSpec() const;
};

/** Build a submit frame around @p req. */
json::Value makeSubmit(const JobRequest &req, std::uint64_t id,
                       Priority priority);

} // namespace qtenon::service::daemon

#endif // QTENON_SERVICE_DAEMON_PROTOCOL_HH
