/**
 * @file
 * The qtenond binary: run the serving daemon until SIGTERM/SIGINT
 * (or a client "shutdown" frame), then drain gracefully — every
 * admitted job completes and flushes its response before exit.
 *
 *   qtenond --socket qtenond.sock --jobs 4 --cache 1024
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "daemon.hh"
#include "obs/metrics.hh"

namespace {

std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --socket PATH       AF_UNIX socket path "
        "(default qtenond.sock)\n"
        "  --jobs N            scheduler workers "
        "(default: QTENON_JOBS, then hardware)\n"
        "  --queue-depth N     admission queue depth (default 64)\n"
        "  --quota N           per-client in-flight quota "
        "(default 16)\n"
        "  --cache N           result-cache entries; 0 disables "
        "(default 1024)\n"
        "  --compile-cache N   compile-cache structural entries; "
        "0 disables (default 256)\n"
        "  --timeout-ms N      default per-job deadline; 0 = none\n"
        "  --metrics-json PATH enable metrics, dump on exit\n"
        "  --help              this text\n",
        argv0);
}

unsigned long
parseCount(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long n = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0') {
        std::fprintf(stderr, "qtenond: bad value for %s: '%s'\n",
                     flag, value);
        std::exit(2);
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qtenon;

    service::daemon::DaemonConfig cfg;
    std::string metricsJsonPath;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "qtenond: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--socket") {
            cfg.socketPath = value("--socket");
        } else if (arg == "--jobs") {
            cfg.workers = static_cast<unsigned>(
                parseCount("--jobs", value("--jobs")));
        } else if (arg == "--queue-depth") {
            cfg.maxQueueDepth =
                parseCount("--queue-depth", value("--queue-depth"));
        } else if (arg == "--quota") {
            cfg.perClientQuota =
                parseCount("--quota", value("--quota"));
        } else if (arg == "--cache") {
            cfg.cacheCapacity =
                parseCount("--cache", value("--cache"));
        } else if (arg == "--compile-cache") {
            cfg.compileCacheCapacity = parseCount(
                "--compile-cache", value("--compile-cache"));
        } else if (arg == "--timeout-ms") {
            cfg.defaultTimeout = std::chrono::milliseconds(
                parseCount("--timeout-ms", value("--timeout-ms")));
        } else if (arg == "--metrics-json") {
            metricsJsonPath = value("--metrics-json");
        } else {
            std::fprintf(stderr, "qtenond: unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (!metricsJsonPath.empty())
        obs::setMetricsEnabled(true);

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    service::daemon::Daemon daemon(cfg);
    try {
        daemon.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "qtenond: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr,
                 "qtenond: serving on %s (%u workers, queue %zu, "
                 "quota %zu, cache %zu)\n",
                 daemon.socketPath().c_str(),
                 daemon.stats().workers, cfg.maxQueueDepth,
                 cfg.perClientQuota, cfg.cacheCapacity);

    // Serve until a signal arrives or a client frame started the
    // drain; then complete everything admitted and exit.
    while (g_signal.load() == 0 && !daemon.stats().draining)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    if (const int sig = g_signal.load())
        std::fprintf(stderr,
                     "qtenond: signal %d, draining...\n", sig);
    else
        std::fprintf(stderr,
                     "qtenond: shutdown requested, draining...\n");
    daemon.stop();

    const auto s = daemon.stats();
    std::fprintf(stderr,
                 "qtenond: drained (served %llu of %llu requests, "
                 "cache %llu/%llu hits)\n",
                 static_cast<unsigned long long>(s.served),
                 static_cast<unsigned long long>(s.requests),
                 static_cast<unsigned long long>(s.cache.hits),
                 static_cast<unsigned long long>(s.cache.hits +
                                                 s.cache.misses));

    if (!metricsJsonPath.empty()) {
        std::ofstream os(metricsJsonPath);
        if (!os) {
            std::fprintf(stderr,
                         "qtenond: cannot open --metrics-json "
                         "path '%s'\n",
                         metricsJsonPath.c_str());
            return 1;
        }
        obs::registry().writeJson(os);
    }
    return 0;
}
