#include "result_cache.hh"

#include "obs/metrics.hh"

namespace qtenon::service::daemon {

namespace {

struct CacheCounters {
    obs::Counter &hits =
        obs::counter("daemon.cache.hits", "result-cache hits");
    obs::Counter &misses =
        obs::counter("daemon.cache.misses", "result-cache misses");
    obs::Counter &inserts =
        obs::counter("daemon.cache.inserts",
                     "result-cache insertions");
    obs::Counter &evictions =
        obs::counter("daemon.cache.evictions",
                     "result-cache LRU evictions");
    obs::Gauge &entries =
        obs::gauge("daemon.cache.entries", "live cache entries");
};

CacheCounters &
counters()
{
    static CacheCounters c;
    return c;
}

} // namespace

CacheKey
cacheKeyOf(const JobRequest &req)
{
    return core::fnv1a128(req.canonicalText());
}

ResultCache::ResultCache(std::size_t capacity) : _capacity(capacity)
{}

std::shared_ptr<const std::string>
ResultCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _byKey.find(key);
    if (it == _byKey.end()) {
        ++_misses;
        counters().misses.inc();
        return nullptr;
    }
    // Refresh recency: splice the entry to the front.
    _lru.splice(_lru.begin(), _lru, it->second);
    ++_hits;
    counters().hits.inc();
    return it->second->bytes;
}

void
ResultCache::insert(const CacheKey &key, std::string bytes)
{
    if (_capacity == 0)
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _byKey.find(key);
    if (it != _byKey.end()) {
        it->second->bytes =
            std::make_shared<const std::string>(std::move(bytes));
        _lru.splice(_lru.begin(), _lru, it->second);
        return;
    }
    while (_byKey.size() >= _capacity) {
        const Entry &victim = _lru.back();
        _byKey.erase(victim.key);
        _lru.pop_back();
        ++_evictions;
        counters().evictions.inc();
    }
    _lru.push_front(Entry{
        key, std::make_shared<const std::string>(std::move(bytes))});
    _byKey[key] = _lru.begin();
    ++_inserts;
    counters().inserts.inc();
    counters().entries.set(
        static_cast<std::int64_t>(_byKey.size()));
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    CacheStats s;
    s.hits = _hits;
    s.misses = _misses;
    s.inserts = _inserts;
    s.evictions = _evictions;
    s.entries = _byKey.size();
    s.capacity = _capacity;
    return s;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _byKey.size();
}

} // namespace qtenon::service::daemon
