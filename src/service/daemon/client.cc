#include "client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace qtenon::service::daemon {

DaemonClient::~DaemonClient()
{
    close();
}

void
DaemonClient::connect(const std::string &socket_path)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            "client: socket path empty or too long: " +
            socket_path);
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(
            std::string("client: socket(): ") +
            std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("client: connect(" + socket_path +
                                 "): " + std::strerror(err));
    }
    _fd = fd;
}

void
DaemonClient::connectWithRetry(const std::string &socket_path,
                               std::uint64_t timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        try {
            connect(socket_path);
            return;
        } catch (const std::exception &) {
            if (std::chrono::steady_clock::now() >= deadline)
                throw;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }
}

void
DaemonClient::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

void
DaemonClient::sendPayload(const std::string &payload)
{
    if (_fd < 0)
        throw std::runtime_error("client: not connected");
    writeFrame(_fd, payload);
}

void
DaemonClient::sendJson(const json::Value &v)
{
    sendPayload(v.dump(0));
}

void
DaemonClient::submitAsync(const JobRequest &req, std::uint64_t id,
                          Priority priority)
{
    sendJson(makeSubmit(req, id, priority));
}

Response
DaemonClient::readResponse()
{
    if (_fd < 0)
        throw std::runtime_error("client: not connected");
    std::string payload;
    if (!readFrame(_fd, payload))
        throw std::runtime_error(
            "client: daemon closed the connection");
    return decodeResponse(payload);
}

Response
DaemonClient::submit(const JobRequest &req, std::uint64_t id,
                     Priority priority)
{
    submitAsync(req, id, priority);
    return readResponse();
}

Response
DaemonClient::ping(std::uint64_t id)
{
    json::Value v = json::Value::object();
    v.set("type", "ping");
    v.set("id", id);
    sendJson(v);
    return readResponse();
}

Response
DaemonClient::stats(std::uint64_t id)
{
    json::Value v = json::Value::object();
    v.set("type", "stats");
    v.set("id", id);
    sendJson(v);
    return readResponse();
}

Response
DaemonClient::shutdown(std::uint64_t id)
{
    json::Value v = json::Value::object();
    v.set("type", "shutdown");
    v.set("id", id);
    sendJson(v);
    return readResponse();
}

Response
decodeResponse(const std::string &payload)
{
    Response r;
    r.body = json::Value::parse(payload);
    r.type = r.body.at("type").asString();
    if (const auto *id = r.body.find("id"))
        r.id = id->asUint();
    // "cache" is the hit/miss string on result frames but a stats
    // object on stats frames.
    if (const auto *cache = r.body.find("cache"))
        if (cache->isString())
            r.cacheState = cache->asString();
    if (const auto *key = r.body.find("key"))
        r.key = key->asString();
    if (const auto *reason = r.body.find("reason"))
        r.reason = reason->asString();
    if (const auto *error = r.body.find("error"))
        r.error = error->asString();
    if (r.type == "result") {
        // The daemon appends "result" as the envelope's final
        // member, so its serialized bytes sit verbatim between the
        // member name and the closing brace — slice them out rather
        // than re-serializing, so byte-identity checks compare what
        // was actually on the wire.
        static const std::string marker = ",\"result\":";
        const auto pos = payload.find(marker);
        if (pos == std::string::npos || payload.empty() ||
            payload.back() != '}')
            throw std::runtime_error(
                "client: malformed result envelope");
        const auto start = pos + marker.size();
        r.resultBytes =
            payload.substr(start, payload.size() - start - 1);
    }
    return r;
}

} // namespace qtenon::service::daemon
