#include "protocol.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

#include "quantum/density_matrix.hh"
#include "runtime/host_core.hh"
#include "vqa/workload.hh"

namespace qtenon::service::daemon {

namespace {

void
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(
                std::string("frame write failed: ") +
                std::strerror(errno));
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

/** Read exactly @p len bytes; false on EOF before the first byte. */
bool
readAll(int fd, void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, p + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(
                std::string("frame read failed: ") +
                std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0)
                return false;
            throw std::runtime_error("truncated frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

void
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > maxFrameBytes)
        throw std::runtime_error("frame payload too large");
    const auto len = static_cast<std::uint32_t>(payload.size());
    unsigned char header[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    writeAll(fd, header, sizeof(header));
    writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string &out)
{
    unsigned char header[4];
    if (!readAll(fd, header, sizeof(header)))
        return false;
    const std::uint32_t len = (std::uint32_t{header[0]} << 24) |
        (std::uint32_t{header[1]} << 16) |
        (std::uint32_t{header[2]} << 8) | std::uint32_t{header[3]};
    if (len > maxFrameBytes)
        throw std::runtime_error("oversize frame (" +
                                 std::to_string(len) + " bytes)");
    out.resize(len);
    if (len > 0 && !readAll(fd, out.data(), len))
        return false;
    return true;
}

const char *
priorityName(Priority p)
{
    switch (p) {
    case Priority::High:
        return "high";
    case Priority::Normal:
        return "normal";
    case Priority::Low:
        return "low";
    }
    return "normal";
}

Priority
priorityFromName(const std::string &name)
{
    if (name == "high")
        return Priority::High;
    if (name == "normal" || name.empty())
        return Priority::Normal;
    if (name == "low")
        return Priority::Low;
    throw std::invalid_argument("unknown priority '" + name + "'");
}

namespace {

vqa::Algorithm
algorithmFromName(const std::string &name)
{
    if (name == "qaoa")
        return vqa::Algorithm::Qaoa;
    if (name == "vqe")
        return vqa::Algorithm::Vqe;
    if (name == "qnn")
        return vqa::Algorithm::Qnn;
    throw std::invalid_argument("unknown algorithm '" + name +
                                "' (qaoa|vqe|qnn)");
}

vqa::OptimizerKind
optimizerFromName(const std::string &name)
{
    if (name == "gd")
        return vqa::OptimizerKind::GradientDescent;
    if (name == "spsa")
        return vqa::OptimizerKind::Spsa;
    throw std::invalid_argument("unknown optimizer '" + name +
                                "' (gd|spsa)");
}

/**
 * The backend/simd name parsers in src/quantum are sim::fatal-based
 * (CLI ergonomics); a daemon parsing untrusted client frames must
 * throw instead, so the whitelists are duplicated here with
 * throwing semantics and *canonical names only*.
 */
quantum::BackendKind
backendFromNameThrows(const std::string &name)
{
    if (name == "auto")
        return quantum::BackendKind::Auto;
    if (name == "statevector")
        return quantum::BackendKind::Statevector;
    if (name == "meanfield")
        return quantum::BackendKind::MeanField;
    if (name == "stabilizer")
        return quantum::BackendKind::Stabilizer;
    if (name == "densitymatrix")
        return quantum::BackendKind::DensityMatrix;
    throw std::invalid_argument(
        "unknown backend '" + name +
        "' (auto|statevector|meanfield|stabilizer|densitymatrix)");
}

quantum::SimdMode
simdFromNameThrows(const std::string &name)
{
    if (name == "auto")
        return quantum::SimdMode::Auto;
    if (name == "scalar")
        return quantum::SimdMode::Scalar;
    throw std::invalid_argument("unknown sv_simd '" + name +
                                "' (auto|scalar)");
}

runtime::HostCoreModel
hostFromName(const std::string &name)
{
    if (name == "rocket")
        return runtime::HostCoreModel::rocket();
    if (name == "boom-l")
        return runtime::HostCoreModel::boomLarge();
    throw std::invalid_argument("unknown host '" + name +
                                "' (rocket|boom-l)");
}

/**
 * Validate the request so the JobSpec it expands to can never trip
 * a sim::fatal inside a daemon worker (which would kill the whole
 * process, not just the job).
 */
void
validate(const JobRequest &r)
{
    const auto kind = backendFromNameThrows(r.backend);
    if (r.qubits < 2 || r.qubits > 1024)
        throw std::invalid_argument("qubits out of range [2, 1024]");
    if (kind == quantum::BackendKind::Statevector &&
        r.qubits > quantum::StateVector::defaultMaxQubits)
        throw std::invalid_argument(
            "statevector backend holds at most " +
            std::to_string(quantum::StateVector::defaultMaxQubits) +
            " qubits");
    if (kind == quantum::BackendKind::DensityMatrix &&
        r.qubits > quantum::DensityMatrix::defaultMaxQubits)
        throw std::invalid_argument(
            "densitymatrix backend holds at most " +
            std::to_string(
                quantum::DensityMatrix::defaultMaxQubits) +
            " qubits");
    if (r.readoutError < 0.0 || r.readoutError > 1.0)
        throw std::invalid_argument(
            "readout_error out of range [0, 1]");
    if (r.shots == 0)
        throw std::invalid_argument("shots must be positive");
    if (r.iterations == 0)
        throw std::invalid_argument("iterations must be positive");
    const auto alg = algorithmFromName(r.algorithm);
    if (alg == vqa::Algorithm::Qaoa) {
        // The QAOA workload builds a 3-regular MAX-CUT graph.
        if (r.qubits % 2 != 0 || r.qubits < 4)
            throw std::invalid_argument(
                "qaoa needs an even qubit count >= 4 "
                "(3-regular MAX-CUT graph)");
        if (r.exactCost && r.qubits > 24)
            throw std::invalid_argument(
                "exact MAX-CUT cost is brute-forced and capped "
                "at 24 qubits");
    }
    optimizerFromName(r.optimizer);
    simdFromNameThrows(r.svSimd);
    for (const auto &h : r.hosts)
        hostFromName(h);
    if (!r.faultSpec.empty())
        fault::FaultSpec::parse(r.faultSpec);
}

} // namespace

json::Value
JobRequest::toJson() const
{
    json::Value o = json::Value::object();
    o.set("name", name);
    if (!client.empty())
        o.set("client", client);
    o.set("algorithm", algorithm);
    o.set("qubits", qubits);
    if (layers)
        o.set("layers", layers);
    o.set("shots", shots);
    o.set("iterations", iterations);
    o.set("optimizer", optimizer);
    o.set("seed", seed);
    o.set("backend", backend);
    o.set("sv_simd", svSimd);
    if (svFusion)
        o.set("sv_fusion", svFusion);
    if (isaVector)
        o.set("isa_vector", isaVector);
    if (exactCost)
        o.set("exact_cost", exactCost);
    if (readoutError != 0.0)
        o.set("readout_error", readoutError);
    if (!faultSpec.empty())
        o.set("fault_spec", faultSpec);
    if (!hosts.empty()) {
        json::Value hs = json::Value::array();
        for (const auto &h : hosts)
            hs.asArray().emplace_back(h);
        o.set("hosts", std::move(hs));
    }
    if (runBaseline)
        o.set("baseline", runBaseline);
    if (timeoutMs)
        o.set("timeout_ms", timeoutMs);
    return o;
}

JobRequest
JobRequest::fromJson(const json::Value &v)
{
    if (!v.isObject())
        throw std::invalid_argument("job must be an object");
    JobRequest r;
    if (const auto *x = v.find("name"))
        r.name = x->asString();
    if (const auto *x = v.find("client"))
        r.client = x->asString();
    if (const auto *x = v.find("algorithm"))
        r.algorithm = x->asString();
    if (const auto *x = v.find("qubits"))
        r.qubits = static_cast<std::uint32_t>(x->asUint());
    if (const auto *x = v.find("layers"))
        r.layers = static_cast<std::uint32_t>(x->asUint());
    if (const auto *x = v.find("shots"))
        r.shots = x->asUint();
    if (const auto *x = v.find("iterations"))
        r.iterations = static_cast<std::uint32_t>(x->asUint());
    if (const auto *x = v.find("optimizer"))
        r.optimizer = x->asString();
    if (const auto *x = v.find("seed"))
        r.seed = x->asUint();
    if (const auto *x = v.find("backend"))
        r.backend = x->asString();
    if (const auto *x = v.find("sv_simd"))
        r.svSimd = x->asString();
    if (const auto *x = v.find("sv_fusion"))
        r.svFusion = x->asBool();
    if (const auto *x = v.find("isa_vector"))
        r.isaVector = x->asBool();
    if (const auto *x = v.find("exact_cost"))
        r.exactCost = x->asBool();
    if (const auto *x = v.find("readout_error"))
        r.readoutError = x->asDouble();
    if (const auto *x = v.find("fault_spec"))
        r.faultSpec = x->asString();
    if (const auto *x = v.find("hosts"))
        for (const auto &h : x->asArray())
            r.hosts.push_back(h.asString());
    if (const auto *x = v.find("baseline"))
        r.runBaseline = x->asBool();
    if (const auto *x = v.find("timeout_ms"))
        r.timeoutMs = x->asUint();
    validate(r);
    return r;
}

JobSpec
JobRequest::toJobSpec() const
{
    validate(*this);
    JobSpec spec;
    spec.name = name;
    spec.workload.algorithm = algorithmFromName(algorithm);
    spec.workload.numQubits = qubits;
    if (layers) {
        spec.workload.qaoaLayers = layers;
        spec.workload.vqeLayers = layers;
        spec.workload.qnnLayers = layers;
    }
    spec.driver.shots = shots;
    spec.driver.iterations = iterations;
    spec.driver.optimizer = optimizerFromName(optimizer);
    spec.driver.seed = seed;
    spec.driver.backend = backendFromNameThrows(backend);
    spec.driver.kernel.simd = simdFromNameThrows(svSimd);
    spec.driver.kernel.fuse1q = svFusion;
    spec.driver.isaVector = isaVector;
    spec.driver.useExactCost = exactCost;
    spec.driver.readoutError = readoutError;
    spec.driver.recordShotData = false;
    if (!faultSpec.empty())
        spec.faultSpec = fault::FaultSpec::parse(faultSpec);
    for (const auto &h : hosts)
        spec.hosts.push_back(hostFromName(h));
    spec.runBaseline = runBaseline;
    spec.timeout = std::chrono::milliseconds(timeoutMs);
    // The cache-determinism contract: the evaluation seed is the
    // request seed verbatim, never a function of the scheduler's
    // job numbering, so a recompute of the same request is
    // bit-identical on any daemon worker count.
    spec.deriveSeedFromJobId = false;
    return spec;
}

std::string
JobRequest::canonicalText() const
{
    const JobSpec spec = toJobSpec();
    // Building the workload is deterministic in (algorithm, size,
    // layers), so the canonical circuit covers the ansatz shape and
    // the initial parameter table bit-exactly. The algorithm name is
    // still included: the cost function (MAX-CUT vs molecular vs
    // QNN labels) is not part of the circuit IR.
    const auto w = vqa::Workload::build(spec.workload);
    std::string out;
    out += "alg=" + algorithm;
    out += ";q=" + std::to_string(qubits);
    out += ";layers=" + std::to_string(layers);
    out += ";circuit{" + w.circuit.canonicalText() + "}";
    out += ";driver{" + vqa::canonicalText(spec.driver) + "}";
    out += ";fault{" + spec.faultSpec.toString() + "}";
    out += ";hosts=[";
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (i)
            out.push_back(',');
        out += hosts[i];
    }
    out += "];baseline=" + std::to_string(runBaseline ? 1 : 0);
    return out;
}

json::Value
makeSubmit(const JobRequest &req, std::uint64_t id,
           Priority priority)
{
    json::Value o = json::Value::object();
    o.set("type", "submit");
    o.set("id", id);
    o.set("priority", priorityName(priority));
    o.set("job", req.toJson());
    return o;
}

} // namespace qtenon::service::daemon
