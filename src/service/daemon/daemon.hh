/**
 * @file
 * qtenond: the persistent Qtenon serving daemon.
 *
 * A long-running server that accepts VQA job requests over a local
 * (AF_UNIX) stream socket speaking the length-prefixed JSON frame
 * protocol (protocol.hh), and multiplexes them onto one shared
 * BatchScheduler — the production-shape alternative to launching a
 * whole CLI process per sweep. Around the scheduler it adds the
 * serving machinery the one-shot binaries never needed:
 *
 *   - admission control: a bounded three-band priority queue with
 *     per-client quotas; over-limit submissions get an explicit
 *     REJECTED frame instead of unbounded buffering (admission.hh);
 *   - a content-addressed result cache: identical evaluations —
 *     common across sweep grids and repeated client traffic — are
 *     served from cached bytes without recompute, and a hit is
 *     byte-identical to a recompute by construction
 *     (result_cache.hh);
 *   - graceful drain: SIGTERM (or a "shutdown" frame) stops
 *     admission, completes every already-admitted job, flushes the
 *     responses, and only then exits.
 *
 * Threading model: one accept loop, one reader thread per client
 * connection (parses frames; serves pings, stats, and cache hits
 * inline), and one submitter thread per scheduler worker (pops the
 * admission queue, runs the job through the BatchScheduler, caches
 * and responds). Submitter count == worker count, so the scheduler
 * is never oversubscribed and priority order is respected at
 * dispatch time.
 */

#ifndef QTENON_SERVICE_DAEMON_DAEMON_HH
#define QTENON_SERVICE_DAEMON_DAEMON_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "admission.hh"
#include "protocol.hh"
#include "result_cache.hh"
#include "service/batch_scheduler.hh"

namespace qtenon::service::daemon {

/** Daemon knobs. */
struct DaemonConfig {
    /** AF_UNIX socket path (must fit sockaddr_un, ~107 bytes). */
    std::string socketPath = "qtenond.sock";
    /** Scheduler workers; 0 = QTENON_JOBS env, then hardware. */
    unsigned workers = 0;
    /** Bounded admission queue depth. */
    std::size_t maxQueueDepth = 64;
    /** Per-client in-flight quota. */
    std::size_t perClientQuota = 16;
    /** Result-cache entries; 0 disables caching. */
    std::size_t cacheCapacity = 1024;
    /** Compile-cache structural entries; 0 disables. Serves repeat
     *  submissions whose circuits differ only in parameter values
     *  without re-running the pass pipeline (images byte-identical
     *  either way, so result bytes are unaffected). */
    std::size_t compileCacheCapacity = 256;
    /** Scheduler-default per-job deadline; zero = none. */
    std::chrono::milliseconds defaultTimeout{0};
};

/** Aggregate serving counters (stats frames, the loadgen artifact). */
struct DaemonStats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t served = 0;
    std::uint64_t rejectedQueueFull = 0;
    std::uint64_t rejectedQuota = 0;
    std::uint64_t rejectedDraining = 0;
    std::uint64_t errors = 0;
    CacheStats cache;
    std::size_t queueDepth = 0;
    unsigned workers = 0;
    bool draining = false;
};

class Daemon
{
  public:
    explicit Daemon(DaemonConfig cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind the socket and start serving; throws on bind failure. */
    void start();

    /**
     * Begin graceful drain (idempotent, callable from any thread
     * including connection readers): stop accepting connections,
     * reject new submissions with "draining", let every admitted
     * job complete and its response flush.
     */
    void requestDrain();

    /** Block until the drain completes and every thread exited. */
    void join();

    /** requestDrain() + join() in one call. */
    void stop();

    bool running() const { return _running.load(); }

    DaemonStats stats() const;

    const DaemonConfig &config() const { return _cfg; }
    const std::string &socketPath() const { return _cfg.socketPath; }

  private:
    /**
     * One client connection. The reader thread parses frames; the
     * write mutex serializes response frames between the reader
     * (pings, rejections, cache hits) and the submitters (computed
     * results). The fd is owned by the Connection and closed with
     * it, so a submitter holding a shared_ptr can never write into
     * a recycled descriptor.
     */
    struct Connection {
        int fd = -1;
        std::uint64_t id = 0;
        std::mutex writeMutex;
        std::atomic<bool> open{true};
        std::thread reader;

        ~Connection();
    };

    /** One admitted job awaiting a submitter. */
    struct Pending {
        std::shared_ptr<Connection> conn;
        std::uint64_t requestId = 0;
        std::string client;
        JobSpec spec;
        CacheKey key;
        std::chrono::steady_clock::time_point received{};
    };

    void acceptLoop();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    void submitterLoop();

    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const std::string &payload);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const json::Value &msg);

    void sendPayload(Connection &conn, const std::string &payload);
    void sendJson(Connection &conn, const json::Value &v);
    void sendResult(Connection &conn, std::uint64_t request_id,
                    const char *cache_state, const CacheKey &key,
                    const std::string &result_bytes);
    void recordLatency(
        std::chrono::steady_clock::time_point received);

    json::Value statsJson() const;

    DaemonConfig _cfg;
    int _listenFd = -1;
    /** Self-pipe waking the accept loop's poll() on drain. */
    int _wakePipe[2] = {-1, -1};

    std::atomic<bool> _running{false};
    std::atomic<bool> _draining{false};
    std::atomic<bool> _stopped{false};

    BatchScheduler _sched;
    AdmissionQueue<Pending> _queue;
    ResultCache _cache;
    isa::CompileCache _compileCache;

    std::thread _acceptThread;
    std::vector<std::thread> _submitters;

    mutable std::mutex _connMutex;
    std::vector<std::shared_ptr<Connection>> _connections;
    std::uint64_t _nextConnId = 0;

    mutable std::mutex _statsMutex;
    std::uint64_t _connectionsAccepted = 0;
    std::uint64_t _requests = 0;
    std::uint64_t _served = 0;
    std::uint64_t _rejectedQueueFull = 0;
    std::uint64_t _rejectedQuota = 0;
    std::uint64_t _rejectedDraining = 0;
    std::uint64_t _errors = 0;

    std::mutex _joinMutex;
};

} // namespace qtenon::service::daemon

#endif // QTENON_SERVICE_DAEMON_DAEMON_HH
