#include "batch_scheduler.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "quantum/statevector.hh"
#include "sim/logging.hh"

namespace qtenon::service {

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Pending: return "pending";
      case JobStatus::Running: return "running";
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::TimedOut: return "timed_out";
      case JobStatus::Cancelled: return "cancelled";
    }
    return "?";
}

JobStatus
jobStatusFromName(const std::string &name)
{
    for (JobStatus s : {JobStatus::Pending, JobStatus::Running,
                        JobStatus::Ok, JobStatus::Failed,
                        JobStatus::TimedOut, JobStatus::Cancelled}) {
        if (name == jobStatusName(s))
            return s;
    }
    throw std::runtime_error("unknown job status '" + name + "'");
}

const SystemRun *
JobResult::system(const std::string &label) const
{
    for (const auto &s : systems) {
        if (s.label == label)
            return &s;
    }
    return nullptr;
}

std::uint64_t
deriveJobSeed(std::uint64_t base, std::uint64_t job_id)
{
    // splitmix64 on base ^ golden-ratio-spread job id.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (job_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

const CancelToken &
CancelToken::none()
{
    static const CancelToken token(nullptr, {});
    return token;
}

unsigned
resolveWorkerCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("QTENON_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
        sim::warn("QTENON_JOBS='", env, "' is not a positive ",
                  "integer; falling back to hardware concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace {

/** Replay @p trace on one already-built system, round by round so
 *  the token can stop between rounds. */
SystemRun
replayOnQtenon(core::QtenonSystem &sys, const vqa::Workload &workload,
               const runtime::VqaTrace &trace, std::string label,
               const CancelToken &token)
{
    SystemRun run;
    run.label = std::move(label);
    const sim::Tick shot = sys.shotDuration(workload.circuit);
    run.setup = sys.executor().installProgram(trace.image);
    for (const auto &round : trace.rounds) {
        token.checkpoint();
        run.rounds +=
            sys.executor().executeRound(round, trace.image, shot);
    }
    run.total = run.setup;
    run.total += run.rounds;
    run.busTransactions = sys.bus().transactions.value();
    run.pulsesGenerated = sys.controller().pulsesGenerated.value();
    run.sltHits = sys.controller().slt().hits;
    run.sltMisses = sys.controller().slt().misses;
    run.simTicks = sys.eventQueue().curTick();
    return run;
}

} // namespace

JobResult
runJobSpec(const JobSpec &spec, std::uint64_t job_id,
           const CancelToken &token)
{
    JobResult r;
    r.jobId = job_id;
    r.name = spec.name;

    auto driver_cfg = spec.driver;
    if (spec.compileCache)
        driver_cfg.compileCache = spec.compileCache;
    if (spec.deriveSeedFromJobId)
        driver_cfg.seed = deriveJobSeed(driver_cfg.seed, job_id);
    r.seed = driver_cfg.seed;
    r.numQubits = spec.workload.numQubits;
    r.algorithm = vqa::algorithmName(spec.workload.algorithm);
    r.optimizer =
        driver_cfg.optimizer == vqa::OptimizerKind::GradientDescent
        ? "GD" : "SPSA";

    if (spec.custom) {
        JobContext ctx{job_id, r.seed, token, r};
        spec.custom(ctx);
        return r;
    }
    r.compileMode =
        runtime::compileModeName(spec.qtenon.software.compile);

    token.checkpoint();
    auto workload = vqa::Workload::build(spec.workload);

    // One private injector per job, seeded from the job's derived
    // seed (unless the spec pins one), so injection sequences are
    // bit-identical regardless of worker count or completion order.
    std::unique_ptr<fault::FaultInjector> inj;
    if (!spec.faultSpec.empty()) {
        const std::uint64_t fseed = spec.faultSpec.seed != 0
            ? spec.faultSpec.seed : fault::mix64(r.seed);
        inj = std::make_unique<fault::FaultInjector>(spec.faultSpec,
                                                     fseed);
        driver_cfg.injector = inj.get();
    }

    // The functional optimization runs once; every replay target
    // reuses the one recorded trace.
    vqa::VqaDriver driver(driver_cfg);
    auto trace = driver.run(workload);
    r.backend = trace.backend;
    r.costHistory = trace.costHistory;
    r.finalCost =
        trace.costHistory.empty() ? 0.0 : trace.costHistory.back();
    r.rounds = trace.rounds.size();
    token.checkpoint();

    std::vector<runtime::HostCoreModel> hosts = spec.hosts;
    if (hosts.empty())
        hosts.push_back(spec.qtenon.host);

    for (const auto &host : hosts) {
        auto qcfg = spec.qtenon;
        qcfg.numQubits = spec.workload.numQubits;
        qcfg.host = host;
        qcfg.injector = inj.get();
        // The driver compiled the trace image; the replay must
        // dispatch it the same way (scalar or wave-granular vector).
        qcfg.software.vectorIsa = driver_cfg.isaVector;
        core::QtenonSystem sys(qcfg);
        r.shotDuration = sys.shotDuration(workload.circuit);
        r.systems.push_back(replayOnQtenon(
            sys, workload, trace, host.name, token));
        r.simTicks += r.systems.back().simTicks;
    }

    if (spec.runBaseline) {
        token.checkpoint();
        auto bcfg = spec.baselineCfg;
        bcfg.injector = inj.get();
        baseline::DecoupledSystem base(bcfg);
        SystemRun run;
        run.label = "baseline";
        for (const auto &round : trace.rounds) {
            token.checkpoint();
            run.rounds += base.executeRound(workload.circuit, round);
        }
        run.total = run.rounds;
        r.systems.push_back(std::move(run));
    }

    if (inj)
        inj->exportCounters(r.metrics);

    return r;
}

BatchScheduler::BatchScheduler(SchedulerConfig cfg)
    : _cfg(cfg), _workers(resolveWorkerCount(cfg.workers))
{
    // Budget the statevector kernels' worker threads against the
    // job pool: workers x kernel threads never exceeds the machine,
    // so enabling threaded kernels cannot oversubscribe a batch.
    const unsigned hw = std::thread::hardware_concurrency();
    quantum::setKernelThreadCap(
        std::max(1u, (hw ? hw : 1u) / std::max(1u, _workers)));

    _metrics.workers = _workers;
    _threads.reserve(_workers);
    for (unsigned i = 0; i < _workers; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

BatchScheduler::~BatchScheduler()
{
    cancelAll();
    {
        std::lock_guard<std::mutex> guard(_mutex);
        _stopping = true;
    }
    _workAvailable.notify_all();
    for (auto &t : _threads)
        t.join();
    quantum::setKernelThreadCap(0);
}

JobHandle
BatchScheduler::submit(JobSpec spec)
{
    auto job = std::make_shared<Job>();
    job->spec = std::move(spec);
    job->future = job->promise.get_future().share();
    job->submitted = std::chrono::steady_clock::now();
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("service.jobs.submitted",
                                      "jobs enqueued");
        c.inc();
    }

    JobHandle handle;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        job->id = _nextJobId++;
        if (!_batchStarted) {
            _batchStarted = true;
            _batchStart = std::chrono::steady_clock::now();
        }
        _jobs.push_back(job);
        _queue.push_back(job);
        ++_metrics.submitted;
        ++_inFlight;
        handle.id = job->id;
        handle.result = job->future;
    }
    _workAvailable.notify_one();
    return handle;
}

std::vector<JobHandle>
BatchScheduler::submitAll(std::vector<JobSpec> specs)
{
    std::vector<JobHandle> handles;
    handles.reserve(specs.size());
    for (auto &s : specs)
        handles.push_back(submit(std::move(s)));
    return handles;
}

bool
BatchScheduler::cancel(std::uint64_t job_id)
{
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        for (const auto &j : _jobs) {
            if (j->id == job_id) {
                job = j;
                break;
            }
        }
    }
    if (!job || job->done.load())
        return false;
    job->cancelRequested.store(true);
    return true;
}

void
BatchScheduler::cancelAll()
{
    std::vector<std::shared_ptr<Job>> jobs;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        jobs = _jobs;
    }
    for (const auto &j : jobs) {
        if (!j->done.load())
            j->cancelRequested.store(true);
    }
}

ResultsStore &
BatchScheduler::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _batchDone.wait(lock, [this] { return _inFlight == 0; });
    return _store;
}

BatchMetrics
BatchScheduler::metrics() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    BatchMetrics m = _metrics;
    if (_batchStarted) {
        const auto end = _inFlight == 0
            ? _batchEnd : std::chrono::steady_clock::now();
        m.batchWallNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - _batchStart)
                .count());
    }
    return m;
}

void
BatchScheduler::workerLoop(unsigned index)
{
    if (auto *sink = obs::traceSink()) {
        sink->threadName(obs::TraceEventSink::wallPid,
                         obs::currentTid(),
                         "worker " + std::to_string(index));
    }
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _workAvailable.wait(lock, [this] {
                return _stopping || !_queue.empty();
            });
            if (_queue.empty()) {
                if (_stopping)
                    return;
                continue;
            }
            job = _queue.front();
            _queue.pop_front();
        }
        executeJob(*job);
    }
}

void
BatchScheduler::executeJob(Job &job)
{
    const auto started = std::chrono::steady_clock::now();

    if (obs::metricsEnabled()) {
        static auto &queue_wait = obs::histogram(
            "service.job.queue_wait_ns",
            "submit-to-start queue wait per job");
        queue_wait.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                started - job.submitted)
                .count()));
    }

    if (job.cancelRequested.load()) {
        JobResult r;
        r.jobId = job.id;
        r.name = job.spec.name;
        r.status = JobStatus::Cancelled;
        finishJob(job, std::move(r), started);
        return;
    }

    const bool job_override = job.spec.timeout.count() > 0;
    const auto timeout =
        job_override ? job.spec.timeout : _cfg.defaultTimeout;
    const std::uint32_t budget =
        std::max(1u, job.spec.retry.maxAttempts);

    static auto &busy = obs::gauge(
        "service.workers.busy",
        "workers currently executing a job");
    busy.add(1);

    JobResult r;
    for (std::uint32_t attempt = 1; attempt <= budget; ++attempt) {
        const auto attempt_started = attempt == 1
            ? started : std::chrono::steady_clock::now();
        const auto deadline = timeout.count() > 0
            ? attempt_started + timeout
            : std::chrono::steady_clock::time_point{};
        CancelToken token(&job.cancelRequested, deadline);

        try {
            r = runJobSpec(job.spec, job.id, token);
            r.status = JobStatus::Ok;
        } catch (const JobCancelledError &) {
            r = JobResult{};
            r.status = JobStatus::Cancelled;
        } catch (const JobTimedOutError &) {
            const auto elapsed = static_cast<std::uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() -
                    attempt_started)
                    .count());
            r = JobResult{};
            r.status = JobStatus::TimedOut;
            r.timeoutSource =
                job_override ? "job-override" : "scheduler-default";
            r.timeoutElapsedMs = elapsed;
            r.error = "exceeded " + std::to_string(timeout.count()) +
                      " ms deadline (" + r.timeoutSource +
                      ", elapsed " + std::to_string(elapsed) + " ms)";
        } catch (const std::exception &e) {
            r = JobResult{};
            r.status = JobStatus::Failed;
            r.error = e.what();
        } catch (...) {
            r = JobResult{};
            r.status = JobStatus::Failed;
            r.error = "unknown exception";
        }
        r.attempts = attempt;

        // Retry only genuine failures; Ok and Cancelled are final,
        // as is a cancel that raced the failing attempt.
        if (r.status == JobStatus::Ok ||
            r.status == JobStatus::Cancelled ||
            attempt >= budget || job.cancelRequested.load())
            break;

        if (obs::metricsEnabled()) {
            static auto &c = obs::counter(
                "service.jobs.retried",
                "job attempts re-run under JobSpec::retry");
            c.inc();
        }
        if (auto *sink = obs::traceSink()) {
            sink->instant(obs::TraceEventSink::wallPid,
                          obs::currentTid(), "job.retry",
                          "service.job", sink->nowUs());
        }
        // Deterministic backoff schedule: a pure function of the
        // job's derived seed and the attempt number, so it is
        // identical at every worker count.
        const std::uint64_t backoff_ms = job.spec.retry.backoffBefore(
            attempt,
            deriveJobSeed(job.spec.driver.seed, job.id));
        if (backoff_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
        }
    }
    busy.add(-1);
    r.jobId = job.id;
    r.name = job.spec.name;
    finishJob(job, std::move(r), started);
}

void
BatchScheduler::finishJob(Job &job, JobResult r,
                          std::chrono::steady_clock::time_point started)
{
    const auto ended = std::chrono::steady_clock::now();
    r.wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            ended - started)
            .count());

    if (obs::metricsEnabled()) {
        static auto &completed = obs::counter(
            "service.jobs.completed", "jobs finished (any status)");
        static auto &ok = obs::counter("service.jobs.ok",
                                       "jobs finished Ok");
        static auto &failed = obs::counter("service.jobs.failed",
                                           "jobs finished Failed");
        static auto &run_ns = obs::histogram(
            "service.job.run_ns", "start-to-finish wall per job");
        completed.inc();
        if (r.status == JobStatus::Ok)
            ok.inc();
        else if (r.status == JobStatus::Failed)
            failed.inc();
        run_ns.record(r.wallNs);
    }
    if (auto *sink = obs::traceSink()) {
        const double end_us = sink->nowUs();
        const double dur_us =
            static_cast<double>(r.wallNs) / 1000.0;
        sink->complete(obs::TraceEventSink::wallPid,
                       obs::currentTid(),
                       r.name.empty() ? "job" : r.name,
                       "service.job", end_us - dur_us, dur_us,
                       {{"job_id", std::to_string(r.jobId)},
                        {"status", jobStatusName(r.status)}});
    }

    _store.add(r);
    job.done.store(true);

    bool batch_finished = false;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        ++_metrics.completed;
        switch (r.status) {
          case JobStatus::Ok: ++_metrics.ok; break;
          case JobStatus::Failed: ++_metrics.failed; break;
          case JobStatus::TimedOut: ++_metrics.timedOut; break;
          case JobStatus::Cancelled: ++_metrics.cancelled; break;
          default: break;
        }
        _metrics.totalJobWallNs += r.wallNs;
        _metrics.totalSimTicks += r.simTicks;
        if (--_inFlight == 0) {
            _batchEnd = ended;
            batch_finished = true;
        }
    }

    job.promise.set_value(std::move(r));
    if (batch_finished)
        _batchDone.notify_all();
}

} // namespace qtenon::service
