#include "sweep.hh"

namespace qtenon::service {

Sweep &
Sweep::base(JobSpec proto)
{
    _proto = std::move(proto);
    return *this;
}

Sweep &
Sweep::configure(const std::function<void(JobSpec &)> &fn)
{
    fn(_proto);
    return *this;
}

Sweep &
Sweep::algorithms(std::vector<vqa::Algorithm> algos)
{
    _algorithms = std::move(algos);
    return *this;
}

Sweep &
Sweep::optimizers(std::vector<vqa::OptimizerKind> opts)
{
    _optimizers = std::move(opts);
    return *this;
}

Sweep &
Sweep::qubits(std::vector<std::uint32_t> sizes)
{
    _qubits = std::move(sizes);
    return *this;
}

Sweep &
Sweep::hosts(std::vector<runtime::HostCoreModel> hosts)
{
    _proto.hosts = std::move(hosts);
    return *this;
}

Sweep &
Sweep::withBaseline(bool on)
{
    _proto.runBaseline = on;
    return *this;
}

Sweep &
Sweep::shots(std::uint64_t shots)
{
    _proto.driver.shots = shots;
    return *this;
}

Sweep &
Sweep::iterations(std::uint32_t iters)
{
    _proto.driver.iterations = iters;
    return *this;
}

Sweep &
Sweep::seed(std::uint64_t seed)
{
    _proto.driver.seed = seed;
    return *this;
}

Sweep &
Sweep::axis(std::vector<SweepVariant> variants)
{
    _axes.push_back(std::move(variants));
    return *this;
}

std::size_t
Sweep::count() const
{
    std::size_t n = 1;
    n *= _algorithms.empty() ? 1 : _algorithms.size();
    n *= _optimizers.empty() ? 1 : _optimizers.size();
    n *= _qubits.empty() ? 1 : _qubits.size();
    for (const auto &ax : _axes)
        n *= ax.empty() ? 1 : ax.size();
    return n;
}

std::vector<JobSpec>
Sweep::build() const
{
    std::vector<JobSpec> out;
    out.reserve(count());

    // Empty axes collapse to "use the prototype's value".
    const std::size_t na = _algorithms.empty() ? 1 : _algorithms.size();
    const std::size_t no = _optimizers.empty() ? 1 : _optimizers.size();
    const std::size_t nq = _qubits.empty() ? 1 : _qubits.size();

    std::vector<std::size_t> axis_idx(_axes.size(), 0);

    for (std::size_t a = 0; a < na; ++a) {
        for (std::size_t o = 0; o < no; ++o) {
            for (std::size_t q = 0; q < nq; ++q) {
                // Odometer over the variant axes.
                std::fill(axis_idx.begin(), axis_idx.end(), 0);
                for (;;) {
                    JobSpec spec = _proto;
                    std::string name = _name;
                    if (!_algorithms.empty()) {
                        spec.workload.algorithm = _algorithms[a];
                        name += "/" + vqa::algorithmName(
                                          _algorithms[a]);
                    }
                    if (!_optimizers.empty()) {
                        spec.driver.optimizer = _optimizers[o];
                        name += _optimizers[o] ==
                                vqa::OptimizerKind::GradientDescent
                            ? "/GD" : "/SPSA";
                    }
                    if (!_qubits.empty()) {
                        spec.workload.numQubits = _qubits[q];
                        name += "/q" + std::to_string(_qubits[q]);
                    }
                    for (std::size_t x = 0; x < _axes.size(); ++x) {
                        if (_axes[x].empty())
                            continue;
                        const auto &v = _axes[x][axis_idx[x]];
                        if (v.apply)
                            v.apply(spec);
                        if (!v.label.empty())
                            name += "/" + v.label;
                    }
                    spec.name = std::move(name);
                    out.push_back(std::move(spec));

                    // Advance the odometer; stop after a full cycle.
                    std::size_t x = _axes.size();
                    while (x > 0) {
                        --x;
                        const std::size_t len =
                            _axes[x].empty() ? 1 : _axes[x].size();
                        if (++axis_idx[x] < len)
                            break;
                        axis_idx[x] = 0;
                    }
                    bool wrapped = true;
                    for (std::size_t i : axis_idx)
                        wrapped = wrapped && i == 0;
                    if (wrapped)
                        break;
                }
            }
        }
    }
    return out;
}

} // namespace qtenon::service
