/**
 * @file
 * A minimal, dependency-free JSON value with a writer and a
 * recursive-descent parser — just enough for the batch experiment
 * service to export and re-import result stores.
 *
 * Design points that matter for the service:
 *  - objects preserve insertion order (vector of pairs), so exports
 *    are byte-deterministic;
 *  - integers (signed and unsigned 64-bit) are kept exact rather than
 *    routed through double, so tick counts and 64-bit seeds survive a
 *    round trip;
 *  - doubles are printed with max_digits10 precision and always carry
 *    a '.' or exponent, so the parser can tell them apart from
 *    integers and export->parse->export is byte-identical.
 */

#ifndef QTENON_SERVICE_JSON_HH
#define QTENON_SERVICE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace qtenon::service::json {

class Value;

using Array = std::vector<Value>;
/** Insertion-ordered object representation. */
using Object = std::vector<std::pair<std::string, Value>>;

/** One JSON value of any kind. */
class Value
{
  public:
    Value() : _v(nullptr) {}
    Value(std::nullptr_t) : _v(nullptr) {}
    Value(bool b) : _v(b) {}
    Value(double d) : _v(d) {}
    Value(std::int64_t i) : _v(i) {}
    Value(std::uint64_t u) : _v(u) {}
    Value(int i) : _v(static_cast<std::int64_t>(i)) {}
    Value(unsigned u) : _v(static_cast<std::uint64_t>(u)) {}
    Value(const char *s) : _v(std::string(s)) {}
    Value(std::string s) : _v(std::move(s)) {}
    Value(Array a) : _v(std::move(a)) {}
    Value(Object o) : _v(std::move(o)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(_v); }
    bool isBool() const { return std::holds_alternative<bool>(_v); }
    bool isDouble() const { return std::holds_alternative<double>(_v); }
    bool isInt() const { return std::holds_alternative<std::int64_t>(_v); }
    bool isUint() const { return std::holds_alternative<std::uint64_t>(_v); }
    bool isNumber() const { return isDouble() || isInt() || isUint(); }
    bool isString() const { return std::holds_alternative<std::string>(_v); }
    bool isArray() const { return std::holds_alternative<Array>(_v); }
    bool isObject() const { return std::holds_alternative<Object>(_v); }

    bool asBool() const { return std::get<bool>(_v); }
    /** Any numeric kind as double. */
    double asDouble() const;
    /** Any numeric kind as uint64 (throws on negative/fractional). */
    std::uint64_t asUint() const;
    /** Any numeric kind as int64. */
    std::int64_t asInt() const;
    const std::string &asString() const { return std::get<std::string>(_v); }
    const Array &asArray() const { return std::get<Array>(_v); }
    const Object &asObject() const { return std::get<Object>(_v); }
    Array &asArray() { return std::get<Array>(_v); }
    Object &asObject() { return std::get<Object>(_v); }

    /** Object member lookup; throws std::runtime_error if absent. */
    const Value &at(const std::string &key) const;
    /** Object member lookup; nullptr if absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Append a member to an object value. */
    void
    set(std::string key, Value v)
    {
        asObject().emplace_back(std::move(key), std::move(v));
    }

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.
     */
    void write(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /** Parse one document; throws std::runtime_error on bad input. */
    static Value parse(const std::string &text);

    static Value object() { return Value(Object{}); }
    static Value array() { return Value(Array{}); }

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::int64_t,
                 std::uint64_t, std::string, Array, Object>
        _v;
};

/** Escape and quote @p s as a JSON string literal. */
std::string quote(const std::string &s);

} // namespace qtenon::service::json

#endif // QTENON_SERVICE_JSON_HH
