/**
 * @file
 * The unit of work of the batch experiment service: one *job* is one
 * self-contained VQA experiment — a QtenonConfig, a workload spec, a
 * driver/optimizer spec, and a seed. Jobs carry no shared state:
 * each one builds its own workload, its own QtenonSystem(s) (each
 * with a private event queue), and draws from an RNG stream derived
 * deterministically from the job id, so a batch's results are
 * bit-identical regardless of worker count or completion order.
 */

#ifndef QTENON_SERVICE_JOB_HH
#define QTENON_SERVICE_JOB_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baseline/decoupled_system.hh"
#include "core/qtenon_system.hh"
#include "fault/fault.hh"
#include "vqa/driver.hh"
#include "vqa/workload.hh"

namespace qtenon::service {

/** Lifecycle of one job. */
enum class JobStatus {
    Pending,
    Running,
    Ok,
    /** The job threw; the batch kept going (failure isolation). */
    Failed,
    /** Cooperative deadline hit between phases/rounds. */
    TimedOut,
    /** Cancelled before or while running. */
    Cancelled,
};

const char *jobStatusName(JobStatus s);
JobStatus jobStatusFromName(const std::string &name);

/** One timing replay of the job's trace on one system. */
struct SystemRun {
    /** Host model name ("rocket", "boom", ...) or "baseline". */
    std::string label;
    /** Program install / JIT-free setup phase. */
    runtime::TimeBreakdown setup;
    /** Sum over all evaluation rounds. */
    runtime::TimeBreakdown rounds;
    /** setup + rounds. */
    runtime::TimeBreakdown total;
    /** Controller/bus counters (zero for the decoupled baseline). */
    double busTransactions = 0.0;
    double pulsesGenerated = 0.0;
    std::uint64_t sltHits = 0;
    std::uint64_t sltMisses = 0;
    /** Simulated time reached by this system's event queue. */
    sim::Tick simTicks = 0;
};

struct JobResult;
class CancelToken;

/** Context handed to custom job bodies. */
struct JobContext {
    std::uint64_t jobId;
    /** The job's derived deterministic seed. */
    std::uint64_t seed;
    const CancelToken &token;
    /** Fill in metrics/systems; status is set by the scheduler. */
    JobResult &result;
};

/** One job: declarative experiment spec (or a custom body). */
struct JobSpec {
    /** Human-readable job name (shows up in reports and JSON). */
    std::string name = "job";

    vqa::WorkloadConfig workload;
    vqa::DriverConfig driver;
    core::QtenonConfig qtenon;

    /**
     * Host models to replay the trace on (one SystemRun each). Empty
     * means "the one host in `qtenon`". The workload runs
     * functionally once; every host replays the same trace.
     */
    std::vector<runtime::HostCoreModel> hosts;

    /** Also replay on the decoupled baseline (label "baseline"). */
    bool runBaseline = false;
    baseline::DecoupledConfig baselineCfg;

    /**
     * Mix the job id into driver.seed (splitmix64) so every job in a
     * batch draws an independent, reproducible RNG stream. Disable
     * to use driver.seed verbatim.
     */
    bool deriveSeedFromJobId = true;

    /** Per-job deadline override; zero uses the scheduler default. */
    std::chrono::milliseconds timeout{0};

    /**
     * Fault-injection plan (`--fault-spec`); empty = perfect links,
     * which is the byte-stable frozen-baseline path. When set, the
     * job builds one private `fault::FaultInjector` seeded from the
     * job's derived seed, so injection sequences are identical on
     * every worker count. Per-site retry policies live next to the
     * components they drive (`baselineCfg.linkRetry`,
     * `qtenon.busRetry`, `driver.evalRetry`).
     */
    fault::FaultSpec faultSpec;

    /**
     * Job-level retry: re-run a Failed/TimedOut job up to
     * `retry.maxAttempts` times with deterministic exponential
     * backoff (milliseconds). The default (1 attempt) is the
     * historical no-retry behaviour.
     */
    fault::RetryPolicy retry;

    /**
     * Optional shared compile cache (not owned; thread-safe). Copied
     * into driver.compileCache for declarative jobs, so repeat
     * submissions of structurally identical circuits skip the pass
     * pipeline. Null = compile cold (the byte-stable default: cached
     * and cold images are byte-identical by contract anyway).
     */
    isa::CompileCache *compileCache = nullptr;

    /**
     * Escape hatch: when set, this body runs instead of the
     * declarative spec (used e.g. by the routing ablation, which
     * exercises the router rather than a QtenonSystem). Throwing
     * marks the job failed without killing the batch.
     */
    std::function<void(JobContext &)> custom;
};

/** Everything one finished job reports. */
struct JobResult {
    std::uint64_t jobId = 0;
    std::string name;
    JobStatus status = JobStatus::Pending;
    /** what() of the escaped exception when status == Failed. */
    std::string error;

    /** Effective driver seed (after job-id derivation). */
    std::uint64_t seed = 0;
    std::uint32_t numQubits = 0;
    std::string algorithm;
    std::string optimizer;
    /** Functional engine the driver resolved ("statevector", ...);
     *  empty for custom jobs. Not written by the v1 JSON schema (so
     *  stored batch results stay byte-stable), but accepted on read. */
    std::string backend;
    /** Compile mode the replay charged ("incremental",
     *  "full-recompile", "cached-incremental"); empty for custom
     *  jobs. Only written to JSON when != "incremental", so stored
     *  batch results stay byte-stable at the default mode. */
    std::string compileMode;

    /** Functional optimization outcome. */
    std::vector<double> costHistory;
    double finalCost = 0.0;
    /** Evaluation rounds recorded in the trace. */
    std::uint64_t rounds = 0;
    /** One shot's wall time on the modeled chip. */
    sim::Tick shotDuration = 0;

    /** One entry per replay target, in spec order. */
    std::vector<SystemRun> systems;

    /** Free-form named metrics (custom jobs, ablation extras). */
    std::map<std::string, double> metrics;

    /** Attempts consumed under JobSpec::retry (1 = first try
     *  succeeded; only written to JSON when > 1). */
    std::uint32_t attempts = 1;

    /** Which deadline applied when status == TimedOut:
     *  "job-override" or "scheduler-default" (empty otherwise). */
    std::string timeoutSource;
    /** Elapsed wall time when the deadline fired, in milliseconds
     *  (timed-out jobs only). */
    std::uint64_t timeoutElapsedMs = 0;

    /** Measured host wall-clock of this job (excluded from the
     *  deterministic digest). */
    std::uint64_t wallNs = 0;
    /** Total simulated ticks across all replayed systems. */
    sim::Tick simTicks = 0;

    /** First SystemRun with @p label, or nullptr. */
    const SystemRun *system(const std::string &label) const;
};

/** splitmix64 mix of a base seed and a job id: statistically
 *  independent per-job streams, stable across worker counts. */
std::uint64_t deriveJobSeed(std::uint64_t base, std::uint64_t job_id);

} // namespace qtenon::service

#endif // QTENON_SERVICE_JOB_HH
