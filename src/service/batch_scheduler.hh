/**
 * @file
 * The batch experiment scheduler: a fixed pool of worker threads
 * draining a shared FIFO of jobs (one self-contained VQA experiment
 * each, see job.hh). Submission returns a future; finished results
 * also land in a merge-safe ResultsStore keyed by job id, so the
 * aggregate is deterministic regardless of worker count or
 * completion order.
 *
 * Worker count comes from (highest priority first) the explicit
 * SchedulerConfig value, the QTENON_JOBS environment variable, and
 * std::thread::hardware_concurrency().
 *
 * Jobs are isolated: a throwing job marks its own result Failed and
 * the batch completes; a cooperative deadline (checked between
 * simulation phases and evaluation rounds) yields TimedOut; cancel()
 * flips a flag the same checkpoints observe.
 */

#ifndef QTENON_SERVICE_BATCH_SCHEDULER_HH
#define QTENON_SERVICE_BATCH_SCHEDULER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "job.hh"
#include "results_store.hh"

namespace qtenon::service {

/** Thrown by CancelToken::checkpoint() on cancellation. */
struct JobCancelledError : std::runtime_error {
    JobCancelledError() : std::runtime_error("job cancelled") {}
};

/** Thrown by CancelToken::checkpoint() past the deadline. */
struct JobTimedOutError : std::runtime_error {
    JobTimedOutError() : std::runtime_error("job timed out") {}
};

/**
 * Cooperative cancellation/deadline handle. Long-running job bodies
 * call checkpoint() at natural boundaries (between rounds); it
 * throws the matching error, which the scheduler converts into the
 * Cancelled / TimedOut status.
 */
class CancelToken
{
  public:
    CancelToken(const std::atomic<bool> *cancelled,
                std::chrono::steady_clock::time_point deadline)
        : _cancelled(cancelled), _deadline(deadline)
    {}

    /** A token that never cancels (for running specs standalone). */
    static const CancelToken &none();

    bool
    cancelRequested() const
    {
        return _cancelled &&
               _cancelled->load(std::memory_order_relaxed);
    }

    bool
    expired() const
    {
        return _deadline != std::chrono::steady_clock::time_point{} &&
               std::chrono::steady_clock::now() > _deadline;
    }

    void
    checkpoint() const
    {
        if (cancelRequested())
            throw JobCancelledError();
        if (expired())
            throw JobTimedOutError();
    }

  private:
    const std::atomic<bool> *_cancelled;
    std::chrono::steady_clock::time_point _deadline;
};

/** Scheduler knobs. */
struct SchedulerConfig {
    /** Worker threads; 0 defers to QTENON_JOBS, then the hardware
     *  concurrency. */
    unsigned workers = 0;
    /** Default per-job deadline; zero means no deadline. */
    std::chrono::milliseconds defaultTimeout{0};
};

/** Aggregate batch accounting. */
struct BatchMetrics {
    unsigned workers = 0;
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    std::size_t cancelled = 0;
    /** Wall-clock from first submit until the last job finished. */
    std::uint64_t batchWallNs = 0;
    /** Sum of per-job wall-clocks (serial-equivalent time). */
    std::uint64_t totalJobWallNs = 0;
    /** Total simulated ticks across every job. */
    sim::Tick totalSimTicks = 0;

    /** Serial-equivalent over actual wall: the pool's measured
     *  parallel speedup on this batch. */
    double
    speedup() const
    {
        return batchWallNs
            ? static_cast<double>(totalJobWallNs) /
                static_cast<double>(batchWallNs)
            : 0.0;
    }
};

/** A submitted job: its id plus a future for the result. */
struct JobHandle {
    std::uint64_t id = 0;
    std::shared_future<JobResult> result;
};

/** The worker-pool scheduler. */
class BatchScheduler
{
  public:
    explicit BatchScheduler(SchedulerConfig cfg = SchedulerConfig{});
    ~BatchScheduler();

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /** Number of worker threads actually running. */
    unsigned workers() const { return _workers; }

    /** Enqueue one job. Thread-safe. */
    JobHandle submit(JobSpec spec);
    std::vector<JobHandle> submitAll(std::vector<JobSpec> specs);

    /**
     * Request cancellation of one job. Pending jobs complete
     * immediately as Cancelled; running jobs stop at their next
     * checkpoint. Returns false for unknown/finished jobs.
     */
    bool cancel(std::uint64_t job_id);
    /** Request cancellation of every unfinished job. */
    void cancelAll();

    /** Block until every submitted job finished; returns the store. */
    ResultsStore &wait();

    /** The (live) aggregated results. */
    ResultsStore &results() { return _store; }
    const ResultsStore &results() const { return _store; }

    /** Snapshot of the batch accounting. */
    BatchMetrics metrics() const;

  private:
    struct Job {
        std::uint64_t id = 0;
        JobSpec spec;
        std::promise<JobResult> promise;
        std::shared_future<JobResult> future;
        std::atomic<bool> cancelRequested{false};
        std::atomic<bool> done{false};
        /** Enqueue time, for the queue-wait histogram. */
        std::chrono::steady_clock::time_point submitted{};
    };

    void workerLoop(unsigned index);
    void executeJob(Job &job);
    void finishJob(Job &job, JobResult r,
                   std::chrono::steady_clock::time_point started);

    SchedulerConfig _cfg;
    unsigned _workers = 0;
    std::vector<std::thread> _threads;

    mutable std::mutex _mutex;
    std::condition_variable _workAvailable;
    std::condition_variable _batchDone;
    std::deque<std::shared_ptr<Job>> _queue;
    std::vector<std::shared_ptr<Job>> _jobs;
    bool _stopping = false;
    std::uint64_t _nextJobId = 0;
    std::size_t _inFlight = 0;

    BatchMetrics _metrics;
    std::chrono::steady_clock::time_point _batchStart{};
    std::chrono::steady_clock::time_point _batchEnd{};
    bool _batchStarted = false;

    ResultsStore _store;
};

/** The SchedulerConfig / QTENON_JOBS / hardware resolution rule. */
unsigned resolveWorkerCount(unsigned requested);

/**
 * Run one declarative job spec to completion on the calling thread
 * (the scheduler's own per-job body; also usable standalone).
 * Throws CancelToken errors and whatever the simulation throws.
 */
JobResult runJobSpec(const JobSpec &spec, std::uint64_t job_id,
                     const CancelToken &token = CancelToken::none());

} // namespace qtenon::service

#endif // QTENON_SERVICE_BATCH_SCHEDULER_HH
