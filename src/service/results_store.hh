/**
 * @file
 * The aggregated, merge-safe results store of the batch experiment
 * service. Worker threads add finished JobResults concurrently; the
 * store keys them by job id, so iteration order — and therefore the
 * JSON export — is deterministic no matter which worker finished
 * first. Stores round-trip through JSON losslessly.
 */

#ifndef QTENON_SERVICE_RESULTS_STORE_HH
#define QTENON_SERVICE_RESULTS_STORE_HH

#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "job.hh"

namespace qtenon::service {

namespace json {
class Value;
}

/**
 * One JobResult as a JSON object (the element shape of the v1
 * results document). @p deterministic_only drops wall-clock fields,
 * so two serializations of bit-identical simulation outcomes compare
 * byte-equal — the daemon's result cache stores exactly these bytes.
 */
json::Value jobResultToJson(const JobResult &r,
                            bool deterministic_only = false);

/** Re-import one jobResultToJson() object. */
JobResult jobResultFromJson(const json::Value &v);

/** Thread-safe collection of JobResults keyed by job id. */
class ResultsStore
{
  public:
    ResultsStore() = default;

    ResultsStore(const ResultsStore &o) { merge(o); }
    ResultsStore &
    operator=(const ResultsStore &o)
    {
        if (this != &o) {
            std::lock_guard<std::mutex> guard(_mutex);
            _byId.clear();
            mergeLocked(o);
        }
        return *this;
    }

    /** Insert or replace the result for its job id. */
    void add(JobResult r);

    /** Copy every result of @p other into this store (same-id
     *  entries are replaced — last merge wins). */
    void merge(const ResultsStore &other);

    std::size_t size() const;

    /** Copy of the result for @p job_id; throws if absent. */
    JobResult get(std::uint64_t job_id) const;
    bool contains(std::uint64_t job_id) const;

    /** Snapshot of all results, ascending job id. */
    std::vector<JobResult> sorted() const;

    /** Results with the given status, ascending job id. */
    std::vector<JobResult> withStatus(JobStatus s) const;

    /**
     * Export as a versioned JSON document. Wall-clock fields are
     * included unless @p deterministic_only, which drops them so two
     * exports of equivalent batches compare byte-equal.
     */
    void toJson(std::ostream &os, bool deterministic_only = false) const;
    std::string toJsonString(bool deterministic_only = false) const;

    /** Re-import a toJson() document; throws on malformed input. */
    static ResultsStore fromJsonString(const std::string &text);
    static ResultsStore fromJson(std::istream &is);

    /**
     * FNV-1a hash over the deterministic JSON export: equal digests
     * mean bit-identical simulation outcomes (used by the
     * determinism tests to compare 1-vs-N-worker batches).
     */
    std::uint64_t deterministicDigest() const;

  private:
    void mergeLocked(const ResultsStore &other);

    mutable std::mutex _mutex;
    std::map<std::uint64_t, JobResult> _byId;
};

} // namespace qtenon::service

#endif // QTENON_SERVICE_RESULTS_STORE_HH
