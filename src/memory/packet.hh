/**
 * @file
 * Memory request packets shared by caches, DRAM, and the system bus.
 */

#ifndef QTENON_MEMORY_PACKET_HH
#define QTENON_MEMORY_PACKET_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace qtenon::memory {

/** Memory command kinds. */
enum class MemCmd : std::uint8_t {
    Read,
    Write,
};

/** A timing-model memory request (data payloads are modelled by size). */
struct MemPacket {
    MemCmd cmd = MemCmd::Read;
    std::uint64_t addr = 0;
    std::uint32_t size = 8;

    bool isWrite() const { return cmd == MemCmd::Write; }
    bool isRead() const { return cmd == MemCmd::Read; }
};

/** Callback invoked when a request completes, with the finish tick. */
using MemCallback = std::function<void(sim::Tick)>;

/**
 * Timing interface every memory component implements. access() may
 * complete the request at any tick >= now by invoking the callback
 * (possibly synchronously via a scheduled event).
 */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /** Issue a request; @p on_complete fires when it finishes. */
    virtual void access(const MemPacket &pkt,
                        MemCallback on_complete) = 0;
};

} // namespace qtenon::memory

#endif // QTENON_MEMORY_PACKET_HH
