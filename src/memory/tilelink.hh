/**
 * @file
 * TileLink-style system bus model.
 *
 * Captures the properties the paper's controller interface depends
 * on (Sec. 5.2): 256-bit beats, a pool of 32 unique 5-bit source
 * tags limiting outstanding transactions, and out-of-order responses
 * (downstream latency varies), which is why the controller needs the
 * Reorder Buffer Queue.
 */

#ifndef QTENON_MEMORY_TILELINK_HH
#define QTENON_MEMORY_TILELINK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "fault/fault.hh"
#include "link/channel.hh"
#include "packet.hh"
#include "sim/sim_object.hh"

namespace qtenon::memory {

class TileLinkPort;

/** Bus parameters. */
struct TileLinkConfig {
    std::uint32_t widthBits = 256;
    std::uint32_t tagBits = 5;
    /** Fixed request/response channel traversal latency. */
    sim::Cycles channelLatency = 2;
};

/** A completed bus transaction, as seen by the requester. */
struct BusResponse {
    std::uint8_t tag = 0;
    sim::Tick issued = 0;
    sim::Tick completed = 0;
    MemPacket pkt;
};

/**
 * The bus connecting the quantum controller to the host L2/DRAM.
 * Requests acquire a tag and serialize on the request channel for
 * ceil(size / beat) cycles; responses complete whenever the
 * downstream device answers, i.e. out of order.
 */
class TileLinkBus : public sim::Clocked, public MemDevice
{
  public:
    using TaggedCallback = std::function<void(const BusResponse &)>;
    /** Observer invoked when a tag is allocated (request leaves). */
    using IssueCallback = std::function<void(std::uint8_t tag,
                                             sim::Tick when)>;

    TileLinkBus(sim::EventQueue &eq, std::string name,
                sim::ClockDomain clock, TileLinkConfig cfg,
                MemDevice *downstream);

    /**
     * The bus's `link::Channel` view (injection site "bus"): the
     * uniform attachment point for fault injection, shared with the
     * Ethernet and ADI adapters.
     */
    TileLinkPort &port() { return *_port; }

    /**
     * Attach fault injection through the port and set the tag-retry
     * policy: an injected response error re-issues the transaction
     * downstream on the *same* tag after a deterministic backoff, so
     * the RBQ still sees exactly one arrival per expected tag.
     */
    void attachInjector(fault::FaultInjector *inj,
                        fault::RetryPolicy retry = {});

    /** MemDevice entry point (tag handled internally). */
    void access(const MemPacket &pkt, MemCallback on_complete) override;

    /** Issue a request and observe the tag in the response. */
    void accessTagged(const MemPacket &pkt, TaggedCallback on_complete,
                      IssueCallback on_issue = nullptr);

    const TileLinkConfig &config() const { return _cfg; }
    std::uint32_t numTags() const { return 1u << _cfg.tagBits; }
    std::uint32_t freeTags() const;

    /** Beats needed to move @p bytes across the bus. */
    sim::Cycles
    beatsFor(std::uint32_t bytes) const
    {
        const std::uint32_t beat_bytes = _cfg.widthBits / 8;
        return std::max<sim::Cycles>(
            1, (bytes + beat_bytes - 1) / beat_bytes);
    }

    sim::Scalar transactions;
    sim::Scalar beats;
    sim::Scalar tagStalls;
    sim::Average tagOccupancy;

  private:
    struct Pending {
        MemPacket pkt;
        TaggedCallback cb;
        IssueCallback issueCb;
    };

    void tryIssue();
    std::uint8_t allocateTag();

    /**
     * Hand @p p to the downstream device at @p arrive; on an injected
     * response error, re-issue (same tag) until the retry budget is
     * spent.
     */
    void issueDownstream(std::shared_ptr<Pending> p, std::uint8_t tag,
                         sim::Tick issued, sim::Tick arrive,
                         std::uint32_t attempt);

    /** Flush per-transaction obs metrics and emit its trace span. */
    void observeTransaction(const MemPacket &pkt, std::uint8_t tag,
                            sim::Tick issued, sim::Tick done);

    TileLinkConfig _cfg;
    MemDevice *_downstream;
    std::uint32_t _freeTagMask;
    std::deque<Pending> _waiting;
    sim::Tick _requestChannelFree = 0;
    /** Lazily allocated trace-sink process id (0 = none yet). */
    std::uint32_t _tracePid = 0;
    fault::RetryPolicy _retry;
    std::unique_ptr<TileLinkPort> _port;
};

/**
 * `link::Channel` adapter over the bus's own channel timing (request
 * serialization + one channel traversal). The event-driven bus model
 * stays authoritative for transaction scheduling; the port is the
 * uniform latency/injection surface.
 */
class TileLinkPort : public link::Channel
{
  public:
    explicit TileLinkPort(const TileLinkBus &bus)
        : link::Channel("bus"), _bus(&bus)
    {}

    sim::Tick
    transferLatency(std::uint64_t bytes) const override
    {
        return _bus->clockDomain().cyclesToTicks(
            _bus->beatsFor(static_cast<std::uint32_t>(bytes)) +
            _bus->config().channelLatency);
    }

  private:
    const TileLinkBus *_bus;
};

} // namespace qtenon::memory

#endif // QTENON_MEMORY_TILELINK_HH
