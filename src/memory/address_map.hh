/**
 * @file
 * The QAddress layout of the quantum controller cache (paper Fig. 4,
 * Table 2).
 *
 * The QCC is a 2D space: five segments, each split into per-qubit
 * chunks so the qubit index is encoded in the address rather than in
 * every program entry. QAddresses are entry-granular. The 64-qubit
 * defaults reproduce the paper's published constants:
 *
 *   .program  qubit k at 0x400*k, 1024 entries each (65-bit entries)
 *   .regfile  0x70000, 1024 x 32-bit
 *   .measure  0x71000, 5120 x 64-bit
 *   .pulse    0x80000 + 0x400*k, 1024 x 640-bit entries per qubit
 *   .slt      hardware-private, 2 sets x 128 x 56-bit per qubit
 *
 * Total 5.66 MB at 64 qubits (verified by a unit test and printed by
 * bench/table2_qcc_config). Larger qubit counts scale the bases while
 * keeping the paper's constants whenever they still fit.
 */

#ifndef QTENON_MEMORY_ADDRESS_MAP_HH
#define QTENON_MEMORY_ADDRESS_MAP_HH

#include <cstdint>

namespace qtenon::memory {

/** The five QCC segments. */
enum class QccSegment : std::uint8_t {
    Program,
    Pulse,
    Measure,
    Slt,
    Regfile,
    Invalid,
};

/** Whether user code may address a segment (Sec. 5.1). */
constexpr bool
isPublicSegment(QccSegment s)
{
    return s == QccSegment::Program || s == QccSegment::Measure ||
           s == QccSegment::Regfile;
}

/** Geometry + address arithmetic for the QCC. */
struct QccLayout {
    std::uint32_t numQubits = 64;
    std::uint32_t programEntriesPerQubit = 1024;
    std::uint32_t pulseEntriesPerQubit = 1024;
    std::uint32_t regfileEntries = 1024;
    std::uint32_t measureEntries = 5120;
    std::uint32_t sltSets = 2;
    std::uint32_t sltEntriesPerSet = 128;

    /** Entry widths in bits (Table 2). */
    static constexpr std::uint32_t programEntryBits = 65;
    static constexpr std::uint32_t pulseEntryBits = 640;
    static constexpr std::uint32_t measureEntryBits = 64;
    static constexpr std::uint32_t sltEntryBits = 56;
    static constexpr std::uint32_t regfileEntryBits = 32;

    /** QAddress field width: the paper quotes a 2^39 space. */
    static constexpr std::uint32_t qaddressBits = 39;

    /** @name Entry-granular segment bases */
    /// @{
    std::uint64_t programBase() const { return 0; }

    std::uint64_t
    programEnd() const
    {
        return programBase() +
            std::uint64_t(numQubits) * programEntriesPerQubit;
    }

    std::uint64_t
    regfileBase() const
    {
        // The paper places .regfile at 0x70000 for 64 qubits; scale
        // up only when the program segment outgrows that.
        const std::uint64_t paper_base = 0x70000;
        return programEnd() <= paper_base ? paper_base : programEnd();
    }

    std::uint64_t
    measureBase() const
    {
        const std::uint64_t paper_base = 0x71000;
        const auto lo = regfileBase() + regfileEntries;
        return lo <= paper_base ? paper_base : lo;
    }

    std::uint64_t
    pulseBase() const
    {
        const std::uint64_t paper_base = 0x80000;
        const auto lo = measureBase() + measureEntries;
        return lo <= paper_base ? paper_base : lo;
    }

    std::uint64_t
    pulseEnd() const
    {
        return pulseBase() +
            std::uint64_t(numQubits) * pulseEntriesPerQubit;
    }
    /// @}

    /** @name Per-qubit entry addresses */
    /// @{
    std::uint64_t
    programAddr(std::uint32_t qubit, std::uint32_t entry) const
    {
        return programBase() +
            std::uint64_t(qubit) * programEntriesPerQubit + entry;
    }

    std::uint64_t
    pulseAddr(std::uint32_t qubit, std::uint32_t entry) const
    {
        return pulseBase() +
            std::uint64_t(qubit) * pulseEntriesPerQubit + entry;
    }

    std::uint64_t
    regfileAddr(std::uint32_t entry) const
    {
        return regfileBase() + entry;
    }

    std::uint64_t
    measureAddr(std::uint32_t entry) const
    {
        return measureBase() + entry;
    }
    /// @}

    /** Segment containing QAddress @p qaddr. */
    QccSegment
    segmentOf(std::uint64_t qaddr) const
    {
        if (qaddr < programEnd())
            return QccSegment::Program;
        if (qaddr >= regfileBase() &&
            qaddr < regfileBase() + regfileEntries) {
            return QccSegment::Regfile;
        }
        if (qaddr >= measureBase() &&
            qaddr < measureBase() + measureEntries) {
            return QccSegment::Measure;
        }
        if (qaddr >= pulseBase() && qaddr < pulseEnd())
            return QccSegment::Pulse;
        return QccSegment::Invalid;
    }

    /** Qubit owning a .program or .pulse QAddress. */
    std::uint32_t
    qubitOf(std::uint64_t qaddr) const
    {
        const auto seg = segmentOf(qaddr);
        if (seg == QccSegment::Program) {
            return static_cast<std::uint32_t>(
                (qaddr - programBase()) / programEntriesPerQubit);
        }
        if (seg == QccSegment::Pulse) {
            return static_cast<std::uint32_t>(
                (qaddr - pulseBase()) / pulseEntriesPerQubit);
        }
        return 0;
    }

    /** @name Segment sizes in bytes (Table 2) */
    /// @{
    std::uint64_t
    programBytes() const
    {
        return std::uint64_t(numQubits) * programEntriesPerQubit *
            programEntryBits / 8;
    }

    std::uint64_t
    pulseBytes() const
    {
        return std::uint64_t(numQubits) * pulseEntriesPerQubit *
            pulseEntryBits / 8;
    }

    std::uint64_t
    measureBytes() const
    {
        return std::uint64_t(measureEntries) * measureEntryBits / 8;
    }

    std::uint64_t
    sltBytes() const
    {
        return std::uint64_t(numQubits) * sltSets * sltEntriesPerSet *
            sltEntryBits / 8;
    }

    std::uint64_t
    regfileBytes() const
    {
        return std::uint64_t(regfileEntries) * regfileEntryBits / 8;
    }

    std::uint64_t
    totalBytes() const
    {
        return programBytes() + pulseBytes() + measureBytes() +
            sltBytes() + regfileBytes();
    }
    /// @}

    /**
     * QSpace: the DRAM region backing evicted SLT entries. The paper
     * allocates 2^20 x 4 bytes = 4 MB per qubit (20-bit tag, 4-byte
     * entries).
     */
    static constexpr std::uint64_t qspacePerQubitBytes =
        (std::uint64_t(1) << 20) * 4;

    /** Host-physical base of QSpace (an arbitrary reserved region). */
    static constexpr std::uint64_t qspaceBase = 0x2'0000'0000ull;

    std::uint64_t
    qspaceAddr(std::uint32_t qubit, std::uint32_t tag) const
    {
        return qspaceBase + std::uint64_t(qubit) * qspacePerQubitBytes +
            std::uint64_t(tag) * 4;
    }
};

} // namespace qtenon::memory

#endif // QTENON_MEMORY_ADDRESS_MAP_HH
