#include "dram.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace qtenon::memory {

Dram::Dram(sim::EventQueue &eq, std::string name, DramConfig cfg)
    : SimObject(eq, std::move(name)), _cfg(cfg),
      _bankFree(cfg.numBanks, 0)
{
    stats().registerScalar(&reads, "reads", "DRAM read requests");
    stats().registerScalar(&writes, "writes", "DRAM write requests");
    stats().registerAverage(&queueDelay, "queue_delay",
                            "per-request bank queueing delay (ticks)");
}

std::uint32_t
Dram::bankOf(std::uint64_t addr) const
{
    return (addr / _cfg.interleaveBytes) % _cfg.numBanks;
}

void
Dram::access(const MemPacket &pkt, MemCallback on_complete)
{
    if (pkt.isWrite())
        ++writes;
    else
        ++reads;

    const auto bank = bankOf(pkt.addr);
    const sim::Tick now = curTick();
    const sim::Tick start = std::max(now, _bankFree[bank]);
    queueDelay.sample(static_cast<double>(start - now));

    // Large requests occupy the bank for multiple bursts.
    const std::uint32_t bursts =
        (pkt.size + _cfg.interleaveBytes - 1) / _cfg.interleaveBytes;
    const sim::Tick busy = _cfg.bankBusy * std::max(1u, bursts);
    _bankFree[bank] = start + busy;

    const sim::Tick done = start + _cfg.accessLatency +
        busy - _cfg.bankBusy;
    if (obs::metricsEnabled()) {
        static auto &accesses = obs::counter(
            "mem.dram.accesses", "DRAM requests (reads + writes)");
        static auto &lat = obs::histogram(
            "mem.dram.latency_ticks",
            "request-to-completion DRAM latency");
        static auto &queue = obs::histogram(
            "mem.dram.queue_wait_ticks",
            "per-request bank queueing delay");
        accesses.inc();
        lat.record(done - now);
        queue.record(start - now);
    }
    eventq().scheduleLambda(done,
        [cb = std::move(on_complete), done] { cb(done); },
        "dram completion");
}

} // namespace qtenon::memory
