/**
 * @file
 * A banked DRAM timing model standing in for the paper's 16 GB DDR3
 * module with four banks (Table 4): fixed access latency plus
 * per-bank serialization.
 */

#ifndef QTENON_MEMORY_DRAM_HH
#define QTENON_MEMORY_DRAM_HH

#include <vector>

#include "packet.hh"
#include "sim/sim_object.hh"

namespace qtenon::memory {

/** Configuration of the DRAM model. */
struct DramConfig {
    std::uint32_t numBanks = 4;
    /** Bank interleave granularity. */
    std::uint32_t interleaveBytes = 64;
    /** Random access latency (row activate + CAS). */
    sim::Tick accessLatency = 40 * sim::nsTicks;
    /** Bank occupancy per access (cycle time). */
    sim::Tick bankBusy = 15 * sim::nsTicks;
};

/** Bank-interleaved DRAM with per-bank queuing delay. */
class Dram : public sim::SimObject, public MemDevice
{
  public:
    Dram(sim::EventQueue &eq, std::string name,
         DramConfig cfg = DramConfig{});

    void access(const MemPacket &pkt, MemCallback on_complete) override;

    const DramConfig &config() const { return _cfg; }

    /** Which bank services @p addr. */
    std::uint32_t bankOf(std::uint64_t addr) const;

    sim::Scalar reads;
    sim::Scalar writes;
    sim::Average queueDelay;

  private:
    DramConfig _cfg;
    std::vector<sim::Tick> _bankFree;
};

} // namespace qtenon::memory

#endif // QTENON_MEMORY_DRAM_HH
