#include "tilelink.hh"

#include <algorithm>
#include <bit>

#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace qtenon::memory {

TileLinkBus::TileLinkBus(sim::EventQueue &eq, std::string name,
                         sim::ClockDomain clock, TileLinkConfig cfg,
                         MemDevice *downstream)
    : Clocked(eq, std::move(name), clock), _cfg(cfg),
      _downstream(downstream)
{
    if (!downstream)
        sim::fatal("bus '", this->name(), "' needs a downstream device");
    if (_cfg.tagBits == 0 || _cfg.tagBits > 5)
        sim::fatal("tag width must be 1..5 bits");
    _freeTagMask = (numTags() >= 32)
        ? ~std::uint32_t(0) : ((1u << numTags()) - 1);

    stats().registerScalar(&transactions, "transactions",
                           "bus transactions completed");
    stats().registerScalar(&beats, "beats", "request beats transferred");
    stats().registerScalar(&tagStalls, "tag_stalls",
                           "requests that waited for a free tag");
    stats().registerAverage(&tagOccupancy, "tag_occupancy",
                            "tags in use when issuing");
    _port = std::make_unique<TileLinkPort>(*this);
}

void
TileLinkBus::attachInjector(fault::FaultInjector *inj,
                            fault::RetryPolicy retry)
{
    _port->attachInjector(inj);
    _retry = retry;
}

std::uint32_t
TileLinkBus::freeTags() const
{
    return std::popcount(_freeTagMask);
}

std::uint8_t
TileLinkBus::allocateTag()
{
    const int tag = std::countr_zero(_freeTagMask);
    _freeTagMask &= ~(1u << tag);
    return static_cast<std::uint8_t>(tag);
}

void
TileLinkBus::access(const MemPacket &pkt, MemCallback on_complete)
{
    accessTagged(pkt,
        [cb = std::move(on_complete)](const BusResponse &r) {
            cb(r.completed);
        });
}

void
TileLinkBus::accessTagged(const MemPacket &pkt,
                          TaggedCallback on_complete,
                          IssueCallback on_issue)
{
    if (_freeTagMask == 0) {
        ++tagStalls;
        if (obs::metricsEnabled()) {
            static auto &c = obs::counter(
                "mem.bus.tag_stalls",
                "requests that waited for a free tag");
            c.inc();
        }
    }
    _waiting.push_back(
        Pending{pkt, std::move(on_complete), std::move(on_issue)});
    tryIssue();
}

void
TileLinkBus::observeTransaction(const MemPacket &pkt,
                                std::uint8_t tag, sim::Tick issued,
                                sim::Tick done)
{
    if (obs::metricsEnabled()) {
        static auto &txns = obs::counter(
            "mem.bus.transactions", "bus transactions completed");
        static auto &lat = obs::histogram(
            "mem.bus.latency_ticks",
            "issue-to-completion bus transaction latency");
        txns.inc();
        lat.record(done - issued);
    }
    if (auto *sink = obs::traceSink()) {
        if (_tracePid == 0) {
            _tracePid = sink->allocProcess(name() + " (sim time)");
            for (std::uint32_t t = 0; t < numTags(); ++t)
                sink->threadName(_tracePid, t,
                                 "tag " + std::to_string(t));
        }
        sink->complete(_tracePid, tag,
                       pkt.cmd == MemCmd::Write ? "write" : "read",
                       "mem.bus", sim::ticksToUs(issued),
                       sim::ticksToUs(done - issued),
                       {{"addr", std::to_string(pkt.addr)},
                        {"bytes", std::to_string(pkt.size)}});
    }
}

void
TileLinkBus::tryIssue()
{
    while (!_waiting.empty() && _freeTagMask != 0) {
        Pending p = std::move(_waiting.front());
        _waiting.pop_front();

        const std::uint8_t tag = allocateTag();
        tagOccupancy.sample(
            static_cast<double>(numTags() - freeTags()));
        if (obs::metricsEnabled()) {
            static auto &occ = obs::histogram(
                "mem.bus.tag_occupancy", "tags in use when issuing");
            occ.record(numTags() - freeTags());
        }
        if (p.issueCb)
            p.issueCb(tag, curTick());

        const sim::Cycles req_beats = beatsFor(p.pkt.size);
        beats += static_cast<double>(req_beats);
        if (obs::metricsEnabled()) {
            static auto &c = obs::counter(
                "mem.bus.beats", "request beats transferred");
            c.add(req_beats);
        }

        const sim::Tick now = curTick();
        sim::Tick start = std::max(now, _requestChannelFree);
        auto *inj = _port->injector();
        const fault::SiteId site = _port->siteId();
        if (inj && inj->active(site) && inj->shouldStall(site)) {
            // An injected stall occupies the request channel, so it
            // back-pressures every queued transaction behind it.
            start += inj->faults(site).stallTicks;
        }
        _requestChannelFree = start +
            clockDomain().cyclesToTicks(req_beats);
        const sim::Tick arrive = _requestChannelFree +
            clockDomain().cyclesToTicks(_cfg.channelLatency);

        issueDownstream(std::make_shared<Pending>(std::move(p)), tag,
                        now, arrive, 1);
    }
}

void
TileLinkBus::issueDownstream(std::shared_ptr<Pending> p,
                             std::uint8_t tag, sim::Tick issued,
                             sim::Tick arrive, std::uint32_t attempt)
{
    // Hand the request to the downstream device once it has fully
    // crossed the request channel.
    eventq().scheduleLambda(arrive,
        [this, p, tag, issued, attempt] {
            MemPacket pkt = p->pkt;
            _downstream->access(pkt,
                [this, p, pkt, tag, issued,
                 attempt](sim::Tick down_done) {
                    const sim::Tick done = down_done +
                        clockDomain().cyclesToTicks(
                            _cfg.channelLatency);
                    auto *inj = _port->injector();
                    const fault::SiteId site = _port->siteId();
                    if (inj && inj->active(site) &&
                        inj->shouldError(site)) {
                        if (attempt <
                            std::max(1u, _retry.maxAttempts)) {
                            inj->count(site, "retries");
                            const sim::Tick backoff =
                                _retry.backoffBefore(
                                    attempt, issued ^ tag);
                            issueDownstream(p, tag, issued,
                                            done + backoff,
                                            attempt + 1);
                            return;
                        }
                        // Budget spent: deliver the (errored)
                        // response rather than wedge the tag.
                        inj->count(site, "retry_exhausted");
                    }
                    eventq().scheduleLambda(done,
                        [this, p, pkt, tag, issued, done] {
                            ++transactions;
                            observeTransaction(pkt, tag, issued,
                                               done);
                            _freeTagMask |= (1u << tag);
                            BusResponse r;
                            r.tag = tag;
                            r.issued = issued;
                            r.completed = done;
                            r.pkt = pkt;
                            p->cb(r);
                            tryIssue();
                        },
                        "bus response");
                });
        },
        "bus request");
}

} // namespace qtenon::memory
