#include "cache.hh"

#include <algorithm>
#include <memory>

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace qtenon::memory {

Cache::Cache(sim::EventQueue &eq, std::string name,
             sim::ClockDomain clock, CacheConfig cfg,
             MemDevice *downstream)
    : SimObject(eq, std::move(name)), _clock(clock), _cfg(cfg),
      _downstream(downstream)
{
    if (!downstream)
        sim::fatal("cache '", this->name(), "' needs a downstream level");
    const auto lines = _cfg.sizeBytes / _cfg.lineBytes;
    if (lines == 0 || lines % _cfg.associativity != 0)
        sim::fatal("cache '", this->name(), "' has bad geometry");
    _numSets = static_cast<std::uint32_t>(lines / _cfg.associativity);
    _lines.assign(lines, Line{});

    stats().registerScalar(&hits, "hits", "cache hits");
    stats().registerScalar(&misses, "misses", "cache misses");
    stats().registerScalar(&writebacks, "writebacks",
                           "dirty lines written back");
}

bool
Cache::probe(std::uint64_t addr) const
{
    const auto line = lineAddr(addr);
    const auto set = setOf(line);
    const auto tag = tagOf(line);
    for (std::uint32_t w = 0; w < _cfg.associativity; ++w) {
        const auto &l = _lines[set * _cfg.associativity + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &l : _lines)
        l = Line{};
}

std::uint32_t
Cache::victimWay(std::uint32_t set) const
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (std::uint32_t w = 0; w < _cfg.associativity; ++w) {
        const auto &l = _lines[set * _cfg.associativity + w];
        if (!l.valid)
            return w;
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = w;
        }
    }
    return victim;
}

void
Cache::accessLine(std::uint64_t line_addr, bool is_write,
                  MemCallback on_complete)
{
    const auto set = setOf(line_addr);
    const auto tag = tagOf(line_addr);

    // Model port bandwidth: accesses serialize on the tag/data port.
    const sim::Tick now = curTick();
    const sim::Tick start = std::max(now, _portFree);
    _portFree = start + _clock.cyclesToTicks(_cfg.portBusy);

    for (std::uint32_t w = 0; w < _cfg.associativity; ++w) {
        auto &l = _lines[set * _cfg.associativity + w];
        if (l.valid && l.tag == tag) {
            ++hits;
            if (obs::metricsEnabled()) {
                static auto &c = obs::counter("mem.cache.hits",
                                              "cache hits");
                c.inc();
            }
            l.lastUse = ++_useCounter;
            if (is_write)
                l.dirty = true;
            const sim::Tick done =
                start + _clock.cyclesToTicks(_cfg.hitLatency);
            eventq().scheduleLambda(done,
                [cb = std::move(on_complete), done] { cb(done); },
                "cache hit");
            return;
        }
    }

    // Miss: evict, fetch the line downstream, then respond.
    ++misses;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("mem.cache.misses",
                                      "cache misses");
        c.inc();
    }
    const auto way = victimWay(set);
    auto &victim = _lines[set * _cfg.associativity + way];
    if (victim.valid && victim.dirty) {
        ++writebacks;
        MemPacket wb;
        wb.cmd = MemCmd::Write;
        wb.addr = (victim.tag * _numSets + set) * _cfg.lineBytes;
        wb.size = _cfg.lineBytes;
        // Writebacks drain in the background; no completion needed.
        _downstream->access(wb, [](sim::Tick) {});
    }
    victim.valid = true;
    victim.dirty = is_write;
    victim.tag = tag;
    victim.lastUse = ++_useCounter;

    MemPacket fill;
    fill.cmd = MemCmd::Read;
    fill.addr = line_addr * _cfg.lineBytes;
    fill.size = _cfg.lineBytes;
    const auto fill_cycles = _cfg.hitLatency + _cfg.fillLatency;
    auto clock = _clock;
    _downstream->access(fill,
        [this, cb = std::move(on_complete), clock,
         fill_cycles](sim::Tick down_done) {
            const sim::Tick done =
                down_done + clock.cyclesToTicks(fill_cycles);
            eventq().scheduleLambda(done,
                [cb, done] { cb(done); }, "cache fill");
        });
}

void
Cache::access(const MemPacket &pkt, MemCallback on_complete)
{
    const auto first = lineAddr(pkt.addr);
    const auto last = lineAddr(pkt.addr + std::max(1u, pkt.size) - 1);
    const auto count = last - first + 1;

    if (count == 1) {
        accessLine(first, pkt.isWrite(), std::move(on_complete));
        return;
    }

    // Multi-line request: complete when the slowest line completes.
    auto remaining = std::make_shared<std::uint64_t>(count);
    auto latest = std::make_shared<sim::Tick>(0);
    auto cb = std::make_shared<MemCallback>(std::move(on_complete));
    for (auto line = first; line <= last; ++line) {
        accessLine(line, pkt.isWrite(),
            [remaining, latest, cb](sim::Tick done) {
                *latest = std::max(*latest, done);
                if (--(*remaining) == 0)
                    (*cb)(*latest);
            });
    }
}

} // namespace qtenon::memory
