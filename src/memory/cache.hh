/**
 * @file
 * A set-associative write-back cache timing model used for the host's
 * L1 and L2 levels (Table 4: 16 KB 4-way L1, 512 KB 8-bank 4-way L2).
 */

#ifndef QTENON_MEMORY_CACHE_HH
#define QTENON_MEMORY_CACHE_HH

#include <cstdint>
#include <vector>

#include "packet.hh"
#include "sim/sim_object.hh"

namespace qtenon::memory {

/** Cache geometry and timing parameters. */
struct CacheConfig {
    std::uint64_t sizeBytes = 16 * 1024;
    std::uint32_t associativity = 4;
    std::uint32_t lineBytes = 64;
    /** Lookup-to-data latency on a hit. */
    sim::Cycles hitLatency = 2;
    /** Additional fill latency applied after the downstream responds. */
    sim::Cycles fillLatency = 1;
    /** Cycles the tag/data port is occupied per access (bandwidth). */
    sim::Cycles portBusy = 1;
};

/**
 * Set-associative LRU write-back cache. Requests larger than one line
 * split into per-line accesses; the completion callback fires when
 * the last line finishes.
 */
class Cache : public sim::SimObject, public MemDevice
{
  public:
    Cache(sim::EventQueue &eq, std::string name, sim::ClockDomain clock,
          CacheConfig cfg, MemDevice *downstream);

    void access(const MemPacket &pkt, MemCallback on_complete) override;

    const CacheConfig &config() const { return _cfg; }
    std::uint32_t numSets() const { return _numSets; }

    /** Whether @p addr currently hits (no state change). */
    bool probe(std::uint64_t addr) const;

    /** Invalidate every line (e.g. between benchmark phases). */
    void flush();

    sim::Scalar hits;
    sim::Scalar misses;
    sim::Scalar writebacks;

    double
    missRate() const
    {
        const double total = hits.value() + misses.value();
        return total > 0 ? misses.value() / total : 0.0;
    }

  private:
    struct Line {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineAddr(std::uint64_t addr) const
    {
        return addr / _cfg.lineBytes;
    }
    std::uint32_t setOf(std::uint64_t line) const
    {
        return static_cast<std::uint32_t>(line % _numSets);
    }
    std::uint64_t tagOf(std::uint64_t line) const
    {
        return line / _numSets;
    }

    /**
     * Access one line; returns the completion tick and issues any
     * downstream traffic.
     */
    void accessLine(std::uint64_t line_addr, bool is_write,
                    MemCallback on_complete);

    /** Find a victim way in @p set (LRU, invalid first). */
    std::uint32_t victimWay(std::uint32_t set) const;

    sim::ClockDomain _clock;
    CacheConfig _cfg;
    MemDevice *_downstream;
    std::uint32_t _numSets;
    std::vector<Line> _lines; // set-major [set * assoc + way]
    std::uint64_t _useCounter = 0;
    sim::Tick _portFree = 0;
};

} // namespace qtenon::memory

#endif // QTENON_MEMORY_CACHE_HH
