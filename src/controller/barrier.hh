/**
 * @file
 * The soft memory barrier backing Qtenon's fine-grained memory
 * consistency (paper Sec. 6.2).
 *
 * The controller marks host-address ranges as synchronized once the
 * corresponding PUT request has been sent through the system bus.
 * The host queries the barrier (non-blocking, single-cycle via the
 * RoCC interface) before touching an address the controller is
 * producing, instead of executing a full FENCE.
 */

#ifndef QTENON_CONTROLLER_BARRIER_HH
#define QTENON_CONTROLLER_BARRIER_HH

#include <cstdint>
#include <map>

namespace qtenon::controller {

/** Interval set over host addresses with synced/unsynced status. */
class MemoryBarrier
{
  public:
    /**
     * Declare a host range the controller will produce; queries in
     * the range answer "not synced" until markSynced covers them.
     */
    void
    declare(std::uint64_t addr, std::uint64_t size)
    {
        _declared.insert({addr, addr + size});
    }

    /** Mark [addr, addr+size) as sent through the system bus. */
    void
    markSynced(std::uint64_t addr, std::uint64_t size)
    {
        if (size == 0)
            return;
        std::uint64_t lo = addr;
        std::uint64_t hi = addr + size;
        // Merge with overlapping/adjacent intervals.
        auto it = _synced.lower_bound(lo);
        if (it != _synced.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= lo)
                it = prev;
        }
        while (it != _synced.end() && it->first <= hi) {
            lo = std::min(lo, it->first);
            hi = std::max(hi, it->second);
            it = _synced.erase(it);
        }
        _synced.insert({lo, hi});
    }

    /**
     * Host-side non-blocking query: is every byte of
     * [addr, addr+size) synchronized?
     */
    bool
    query(std::uint64_t addr, std::uint64_t size = 1)
    {
        ++_queries;
        auto it = _synced.upper_bound(addr);
        if (it == _synced.begin()) {
            ++_missQueries;
            return false;
        }
        --it;
        const bool ok = it->first <= addr && it->second >= addr + size;
        if (!ok)
            ++_missQueries;
        return ok;
    }

    /** Forget all state (new experiment / program). */
    void
    reset()
    {
        _declared.clear();
        _synced.clear();
    }

    std::uint64_t queries() const { return _queries; }
    std::uint64_t missQueries() const { return _missQueries; }
    std::size_t syncedIntervals() const { return _synced.size(); }

  private:
    std::map<std::uint64_t, std::uint64_t> _declared;
    std::map<std::uint64_t, std::uint64_t> _synced;
    std::uint64_t _queries = 0;
    std::uint64_t _missQueries = 0;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_BARRIER_HH
