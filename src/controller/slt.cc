#include "slt.hh"

#include "sim/logging.hh"

namespace qtenon::controller {

SkipLookupTable::SkipLookupTable(std::uint32_t num_qubits, SltConfig cfg)
    : _cfg(cfg), _numQubits(num_qubits)
{
    _entries.assign(
        std::size_t(num_qubits) * cfg.entriesPerWay * cfg.ways,
        Entry{});
    _qspace.resize(num_qubits);
    _nextPulseEntry.assign(num_qubits, 0);
}

std::uint32_t
SkipLookupTable::allocate(std::uint32_t qubit,
                          std::uint32_t pulse_entries_per_qubit)
{
    if (qubit >= _numQubits)
        sim::panic("SLT allocate on out-of-range qubit ", qubit);
    const auto entry = _nextPulseEntry[qubit];
    _nextPulseEntry[qubit] = (entry + 1) % pulse_entries_per_qubit;
    return entry;
}

void
SkipLookupTable::reset()
{
    for (auto &e : _entries)
        e = Entry{};
    for (auto &m : _qspace)
        m.clear();
    std::fill(_nextPulseEntry.begin(), _nextPulseEntry.end(), 0);
    hits = misses = qspaceHits = qspaceAllocs = evictions = 0;
}

std::uint32_t
SkipLookupTable::indexOf(std::uint8_t type, std::uint32_t data)
{
    // Fig. 7: 3 bits of type and 4 bits of truncated data concatenate
    // into the 7-bit set index.
    const std::uint32_t t3 = type & 0x7;
    const std::uint32_t d4 = (data >> 10) & 0xF;
    return (t3 << 4) | d4;
}

std::uint32_t
SkipLookupTable::tagOf(std::uint8_t type, std::uint32_t data) const
{
    // Mix the full 31-bit identity down to tagBits deterministically.
    std::uint64_t key =
        (std::uint64_t(type) << 27) | (data & ((1u << 27) - 1));
    key ^= key >> 13;
    key *= 0x9E3779B97F4A7C15ull;
    key ^= key >> 29;
    return static_cast<std::uint32_t>(key & ((1u << _cfg.tagBits) - 1));
}

SkipLookupTable::Entry &
SkipLookupTable::entryAt(std::uint32_t qubit, std::uint32_t index,
                         std::uint32_t way)
{
    const std::size_t base =
        std::size_t(qubit) * _cfg.entriesPerWay * _cfg.ways;
    return _entries[base + std::size_t(index) * _cfg.ways + way];
}

SltResult
SkipLookupTable::lookup(std::uint32_t qubit, std::uint8_t type,
                        std::uint32_t data,
                        std::uint32_t pulse_entries_per_qubit)
{
    if (qubit >= _numQubits)
        sim::panic("SLT lookup on out-of-range qubit ", qubit);

    SltResult r;
    r.cycles = _cfg.lookupCycles;

    // The 7-bit concatenated index is reduced to however many
    // entries a way actually has (128 in the paper's geometry).
    const auto index = indexOf(type, data) % _cfg.entriesPerWay;
    const auto tag = tagOf(type, data);
    const std::uint32_t count_max = (1u << _cfg.countBits) - 1;

    // Probe both ways.
    for (std::uint32_t w = 0; w < _cfg.ways; ++w) {
        auto &e = entryAt(qubit, index, w);
        if (e.valid && e.tag == tag) {
            ++hits;
            if (e.count < count_max)
                ++e.count;
            r.hit = true;
            r.pulseEntry = e.pulseEntry;
            return r;
        }
    }

    ++misses;

    // Miss: choose a victim way by the Least-Count policy.
    std::uint32_t victim = 0;
    bool found_invalid = false;
    std::uint32_t least = ~std::uint32_t(0);
    for (std::uint32_t w = 0; w < _cfg.ways; ++w) {
        auto &e = entryAt(qubit, index, w);
        if (!e.valid) {
            victim = w;
            found_invalid = true;
            break;
        }
        if (e.count < least) {
            least = e.count;
            victim = w;
        }
    }

    auto &v = entryAt(qubit, index, victim);
    if (!found_invalid && v.valid) {
        // Evict with write-back to QSpace (one DRAM write).
        ++evictions;
        r.evicted = true;
        _qspace[qubit][v.tag] = v.pulseEntry;
        r.cycles += _cfg.qspaceAccessCycles;
    }

    // Consult QSpace for the requested tag (one DRAM read).
    r.cycles += _cfg.qspaceAccessCycles;
    auto it = _qspace[qubit].find(tag);
    std::uint32_t pulse_entry;
    if (it != _qspace[qubit].end()) {
        ++qspaceHits;
        r.qspaceHit = true;
        pulse_entry = it->second;
    } else {
        // Allocate a fresh pulse slot for this qubit.
        ++qspaceAllocs;
        pulse_entry = _nextPulseEntry[qubit];
        _nextPulseEntry[qubit] =
            (pulse_entry + 1) % pulse_entries_per_qubit;
        if (_nextPulseEntry[qubit] == 0 && !_warnedWrap) {
            _warnedWrap = true;
            sim::warn("SLT pulse allocator wrapped; distinct parameter "
                      "count exceeds the .pulse chunk size");
        }
        r.needsGeneration = true;
    }

    v.valid = true;
    v.tag = tag;
    v.pulseEntry = pulse_entry;
    v.count = 1;
    r.pulseEntry = pulse_entry;
    return r;
}

} // namespace qtenon::controller
