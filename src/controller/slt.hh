/**
 * @file
 * The Skip Lookup Table (SLT), paper Sec. 5.3 / Fig. 7.
 *
 * Each qubit owns one SLT of 2 ways x 128 entries. A gate parameter
 * (type + quantized data) is reduced to a 7-bit index and a 20-bit
 * tag; a hit returns the .pulse QAddress of a previously generated
 * control pulse so the PGU stage can be skipped. Misses fall back to
 * QSpace (a 4 MB/qubit DRAM region indexed by tag); replacement is
 * Least-Count (LC): invalid entries first, then the smallest access
 * count, with eviction write-back to QSpace.
 */

#ifndef QTENON_CONTROLLER_SLT_HH
#define QTENON_CONTROLLER_SLT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/sim_object.hh"

namespace qtenon::controller {

/** SLT geometry. */
struct SltConfig {
    std::uint32_t ways = 2;
    std::uint32_t entriesPerWay = 128;
    std::uint32_t tagBits = 20;
    std::uint32_t countBits = 5;
    /** Controller cycles for one SLT probe. */
    sim::Cycles lookupCycles = 1;
    /** Controller cycles for one QSpace (DRAM) access. */
    sim::Cycles qspaceAccessCycles = 60;
};

/** Outcome of one SLT lookup. */
struct SltResult {
    /** Matched in the SLT itself. */
    bool hit = false;
    /** Missed the SLT but matched in QSpace. */
    bool qspaceHit = false;
    /** A valid entry was evicted (written back to QSpace). */
    bool evicted = false;
    /** Entry index within the qubit's .pulse chunk. */
    std::uint32_t pulseEntry = 0;
    /** True when a fresh pulse must be generated. */
    bool needsGeneration = false;
    /** Cycles consumed by the lookup (probe + QSpace traffic). */
    sim::Cycles cycles = 0;
};

/**
 * The per-qubit skip lookup table with its QSpace backing store. The
 * QSpace content is held functionally (a tag -> pulse-entry map per
 * qubit); its access cost is charged in cycles per SltConfig.
 */
class SkipLookupTable
{
  public:
    SkipLookupTable(std::uint32_t num_qubits, SltConfig cfg = SltConfig{});

    const SltConfig &config() const { return _cfg; }

    /**
     * Look up (and on miss, install) the parameter identified by
     * @p type / @p data for @p qubit. Allocation of new pulse
     * entries uses a per-qubit bump allocator over the .pulse chunk.
     *
     * @param pulse_entries_per_qubit the .pulse chunk size, bounding
     *        the allocator.
     */
    SltResult lookup(std::uint32_t qubit, std::uint8_t type,
                     std::uint32_t data,
                     std::uint32_t pulse_entries_per_qubit);

    /**
     * Bypass path for the SLT-disabled ablation: bump the qubit's
     * pulse allocator without consulting or updating the table.
     */
    std::uint32_t allocate(std::uint32_t qubit,
                           std::uint32_t pulse_entries_per_qubit);

    /** Drop all SLT and QSpace state (e.g. between experiments). */
    void reset();

    /** 7-bit set index from the truncated type/data (Fig. 7 step 1). */
    static std::uint32_t indexOf(std::uint8_t type, std::uint32_t data);

    /** 20-bit tag from the full parameter identity. */
    std::uint32_t tagOf(std::uint8_t type, std::uint32_t data) const;

    /** @name Statistics (shared across all qubits) */
    /// @{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t qspaceHits = 0;
    std::uint64_t qspaceAllocs = 0;
    std::uint64_t evictions = 0;
    /// @}

  private:
    struct Entry {
        std::uint32_t tag = 0;
        std::uint32_t pulseEntry = 0;
        bool valid = false;
        std::uint32_t count = 0;
    };

    Entry &entryAt(std::uint32_t qubit, std::uint32_t index,
                   std::uint32_t way);

    SltConfig _cfg;
    std::uint32_t _numQubits;
    /** [qubit][index * ways + way] */
    std::vector<Entry> _entries;
    /** Per-qubit functional QSpace: tag -> pulse entry. */
    std::vector<std::unordered_map<std::uint32_t, std::uint32_t>>
        _qspace;
    /** Per-qubit .pulse bump allocator. */
    std::vector<std::uint32_t> _nextPulseEntry;
    bool _warnedWrap = false;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_SLT_HH
