#include "pipeline.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace qtenon::controller {

PulsePipeline::PulsePipeline(QuantumControllerCache &qcc,
                             SkipLookupTable &slt, PipelineConfig cfg)
    : _qcc(qcc), _slt(slt), _cfg(cfg)
{
    if (cfg.numPgus == 0)
        sim::fatal("pipeline needs at least one PGU");
}

PulseEntry
PulsePipeline::synthesizePulse(const ProgramEntry &e,
                               std::uint32_t qubit) const
{
    (void)qubit; // per-qubit calibration offsets are not modeled
    const auto data =
        e.regFlag ? _qcc.readRegfile(e.data) : e.data;
    const auto type = ProgramEntry::decodeType(e.type);
    const double angle = ProgramEntry::decodeAngle(data);
    return _synth.entryFor(type, angle);
}

PipelineResult
PulsePipeline::runAll()
{
    const auto &layout = _qcc.layout();
    std::vector<std::uint64_t> work;
    for (std::uint32_t q = 0; q < layout.numQubits; ++q) {
        const auto len = _qcc.programLength(q);
        for (std::uint32_t i = 0; i < len; ++i)
            work.push_back(layout.programAddr(q, i));
    }
    return run(work);
}

PipelineResult
PulsePipeline::run(const std::vector<std::uint64_t> &work)
{
    PipelineResult res;
    const auto &layout = _qcc.layout();

    std::size_t pc = 0; // stage 1 program counter over the work list
    // Stage latches, modeled as value + valid bit like RTL registers.
    InFlight stage1{};
    bool stage1_valid = false;
    InFlight stage2out{}; // awaiting a PGU in stage 3
    bool stage2_valid = false;
    std::vector<Pgu> pgus(_cfg.numPgus);
    // Pulse QAddresses currently being generated (status Pending):
    // later entries hitting the same parameter must not re-dispatch.
    std::vector<std::uint64_t> in_flight;
    auto is_in_flight = [&](std::uint64_t qaddr) {
        return std::find(in_flight.begin(), in_flight.end(), qaddr) !=
            in_flight.end();
    };

    sim::Cycles cycle = 0;
    auto any_pgu_busy = [&] {
        return std::any_of(pgus.begin(), pgus.end(),
                           [](const Pgu &p) { return p.busy; });
    };

    while (pc < work.size() || stage1_valid || stage2_valid ||
           any_pgu_busy()) {
        bool progress = false;

        // ---- Stage 4: arbiter writes back one finished PGU/cycle.
        {
            Pgu *done = nullptr;
            for (auto &p : pgus) {
                if (p.busy && p.doneCycle <= cycle &&
                    (!done || p.doneCycle < done->doneCycle)) {
                    done = &p;
                }
            }
            if (done) {
                auto e = _qcc.readProgram(done->programQaddr);
                _qcc.writePulse(done->pulseQaddr,
                                synthesizePulse(
                                    e, layout.qubitOf(done->pulseQaddr)));
                e.status = EntryStatus::Valid;
                _qcc.writeProgram(done->programQaddr, e);
                in_flight.erase(std::remove(in_flight.begin(),
                                            in_flight.end(),
                                            done->pulseQaddr),
                                in_flight.end());
                done->busy = false;
                ++res.pulsesGenerated;
                ++res.stage4BusyCycles;
                progress = true;
            }
        }

        // ---- Stage 3: dispatch the stage-2 output to a free PGU.
        bool stall = false;
        if (stage2_valid && stage2out.readyCycle <= cycle) {
            // Priority encoder: lowest-numbered free PGU.
            auto it = std::find_if(pgus.begin(), pgus.end(),
                                   [](const Pgu &p) { return !p.busy; });
            if (it != pgus.end()) {
                it->busy = true;
                it->doneCycle = cycle + _cfg.pguLatency;
                it->pulseQaddr = stage2out.pulseQaddr;
                it->programQaddr = stage2out.programQaddr;
                stage2_valid = false;
                ++res.stage3BusyCycles;
                if (obs::metricsEnabled()) {
                    static auto &occ = obs::histogram(
                        "controller.pipeline.pgu_occupancy",
                        "busy PGUs after each dispatch");
                    occ.record(static_cast<std::uint64_t>(
                        std::count_if(pgus.begin(), pgus.end(),
                                      [](const Pgu &p) {
                                          return p.busy;
                                      })));
                }
                progress = true;
            } else {
                stall = true;
                ++res.pguStallCycles;
            }
        } else if (stage2_valid) {
            // Held in stage 2 while a QSpace access completes.
            stall = true;
        }

        // ---- Stage 2: decode + SLT.
        if (!stall && stage1_valid) {
            InFlight f = stage1;
            stage1_valid = false;
            progress = true;
            ++res.entriesProcessed;
            ++res.stage2BusyCycles;

            auto entry = f.entry;
            std::uint32_t data = entry.data;
            if (entry.regFlag)
                data = _qcc.readRegfile(entry.data);

            if (entry.status == EntryStatus::Valid &&
                _qcc.pulseValid(entry.qaddr)) {
                // Pulse already present: nothing to do.
                ++res.skippedValid;
            } else if (!_cfg.sltEnabled) {
                // Ablation: no skip path; regenerate unconditionally.
                const auto pulse_entry = _slt.allocate(
                    f.qubit, layout.pulseEntriesPerQubit);
                const auto pulse_qaddr =
                    layout.pulseAddr(f.qubit, pulse_entry);
                entry.qaddr = static_cast<std::uint32_t>(pulse_qaddr);
                entry.status = EntryStatus::Pending;
                _qcc.writeProgram(f.programQaddr, entry);
                f.entry = entry;
                f.pulseQaddr = pulse_qaddr;
                f.readyCycle = cycle + 1;
                stage2out = f;
                stage2_valid = true;
            } else {
                auto slt = _slt.lookup(f.qubit, entry.type, data,
                                       layout.pulseEntriesPerQubit);
                res.sltHits += slt.hit ? 1 : 0;
                res.sltMisses += slt.hit ? 0 : 1;
                res.qspaceHits += slt.qspaceHit ? 1 : 0;

                const auto pulse_qaddr =
                    layout.pulseAddr(f.qubit, slt.pulseEntry);
                entry.qaddr = static_cast<std::uint32_t>(pulse_qaddr);
                const bool must_generate =
                    (slt.needsGeneration ||
                     !_qcc.pulseValid(pulse_qaddr)) &&
                    !is_in_flight(pulse_qaddr);
                if (must_generate) {
                    entry.status = EntryStatus::Pending;
                    _qcc.writeProgram(f.programQaddr, entry);
                    in_flight.push_back(pulse_qaddr);
                    f.entry = entry;
                    f.pulseQaddr = pulse_qaddr;
                    f.readyCycle = cycle + slt.cycles;
                    stage2out = f;
                    stage2_valid = true;
                } else {
                    // Hit (or generation already in flight): link the
                    // program entry to the cached pulse.
                    entry.status = EntryStatus::Valid;
                    _qcc.writeProgram(f.programQaddr, entry);
                }
            }
        }

        // ---- Stage 1: fetch the next work item.
        if (!stall && !stage1_valid && pc < work.size()) {
            InFlight f{};
            f.programQaddr = work[pc++];
            f.qubit = layout.qubitOf(f.programQaddr);
            f.entry = _qcc.readProgram(f.programQaddr);
            stage1 = f;
            stage1_valid = true;
            ++res.stage1BusyCycles;
            progress = true;
        }

        // ---- Advance time: fast-forward when only PGUs are working.
        if (progress) {
            ++cycle;
            continue;
        }
        sim::Cycles next = ~sim::Cycles(0);
        for (const auto &p : pgus) {
            if (p.busy)
                next = std::min(next, p.doneCycle);
        }
        if (stage2_valid && stage2out.readyCycle > cycle)
            next = std::min(next, stage2out.readyCycle);
        if (next == ~sim::Cycles(0)) {
            // Nothing in flight and no progress: should be done.
            break;
        }
        if (stall && next > cycle)
            res.pguStallCycles += next - cycle - 1;
        cycle = std::max(cycle + 1, next);
    }

    res.cycles = cycle;
    return res;
}

} // namespace qtenon::controller
