/**
 * @file
 * Control-pulse waveform synthesis: what a PGU actually computes.
 *
 * Models the standard superconducting single-qubit drive: a Gaussian
 * envelope with a DRAG quadrature correction, amplitude-scaled by
 * the rotation angle, mixed onto I/Q channels and quantized to the
 * two 16-bit DAC streams the ADI describes (64 bits per nanosecond
 * per qubit). One 640-bit .pulse entry therefore holds 10 ns of
 * waveform: 20 samples x 2 channels x 16 bit.
 */

#ifndef QTENON_CONTROLLER_PULSE_SYNTH_HH
#define QTENON_CONTROLLER_PULSE_SYNTH_HH

#include <cstdint>
#include <vector>

#include "qcc.hh"
#include "quantum/gate.hh"

namespace qtenon::controller {

/** Synthesis parameters. */
struct PulseSynthConfig {
    /** DAC sample rate. */
    double sampleRateHz = 2e9;
    /** Single-qubit drive duration. */
    double oneQubitNs = 20.0;
    /** Two-qubit (coupler) drive duration. */
    double twoQubitNs = 40.0;
    /** Measurement drive duration fitting one entry budget. */
    double measureNs = 600.0;
    /** Gaussian sigma as a fraction of the pulse length. */
    double sigmaFraction = 0.25;
    /** DRAG coefficient (quadrature derivative weight). */
    double dragCoefficient = 0.5;
};

/** A synthesized waveform: interleaved I/Q 16-bit samples. */
struct Waveform {
    std::vector<std::int16_t> i;
    std::vector<std::int16_t> q;

    std::size_t numSamples() const { return i.size(); }
};

/** The PGU's arithmetic core. */
class PulseSynthesizer
{
  public:
    explicit PulseSynthesizer(PulseSynthConfig cfg = PulseSynthConfig{})
        : _cfg(cfg)
    {}

    const PulseSynthConfig &config() const { return _cfg; }

    /** Drive duration in nanoseconds for a gate type. */
    double durationNs(quantum::GateType type) const;

    /**
     * Synthesize the waveform for @p type at @p angle: Gaussian I
     * envelope scaled by angle / pi, DRAG derivative on Q.
     */
    Waveform synthesize(quantum::GateType type, double angle) const;

    /**
     * Pack the first 10 ns of a waveform into one 640-bit .pulse
     * entry (20 samples x 2 channels x 16 bit).
     */
    PulseEntry packEntry(const Waveform &w) const;

    /** Convenience: synthesize + pack. */
    PulseEntry entryFor(quantum::GateType type, double angle) const;

    /** Samples one .pulse entry holds per channel. */
    static constexpr std::uint32_t samplesPerEntry = 20;

  private:
    PulseSynthConfig _cfg;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_PULSE_SYNTH_HH
