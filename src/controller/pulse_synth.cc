#include "pulse_synth.hh"

#include <algorithm>
#include <cmath>

namespace qtenon::controller {

double
PulseSynthesizer::durationNs(quantum::GateType type) const
{
    using quantum::GateType;
    switch (type) {
      case GateType::Measure:
        return _cfg.measureNs;
      case GateType::RZZ:
      case GateType::CZ:
      case GateType::CNOT:
        return _cfg.twoQubitNs;
      default:
        return _cfg.oneQubitNs;
    }
}

Waveform
PulseSynthesizer::synthesize(quantum::GateType type, double angle) const
{
    const double duration_ns = durationNs(type);
    const auto samples = static_cast<std::size_t>(
        duration_ns * _cfg.sampleRateHz / 1e9);

    // Rotation amplitude: the integrated Rabi drive is proportional
    // to the angle; non-parameterized gates drive a fixed pi (or
    // pi/2 for H-like) pulse.
    double amp = 1.0;
    if (quantum::isParameterized(type)) {
        // Wrap into (-pi, pi] and scale.
        const double a = std::remainder(angle, 2.0 * M_PI);
        amp = a / M_PI;
    }

    Waveform w;
    w.i.resize(samples);
    w.q.resize(samples);
    const double sigma = duration_ns * _cfg.sigmaFraction;
    const double mid = duration_ns / 2.0;
    const double dt = 1e9 / _cfg.sampleRateHz;
    const double full_scale = 32767.0;

    for (std::size_t s = 0; s < samples; ++s) {
        const double t = (static_cast<double>(s) + 0.5) * dt;
        const double x = (t - mid) / sigma;
        const double gauss = std::exp(-0.5 * x * x);
        // DRAG: quadrature gets the scaled derivative of the
        // envelope, suppressing leakage to the second level.
        const double deriv = -x / sigma * gauss;
        const double iv = amp * gauss;
        const double qv = amp * _cfg.dragCoefficient * deriv;
        w.i[s] = static_cast<std::int16_t>(
            std::clamp(iv, -1.0, 1.0) * full_scale);
        w.q[s] = static_cast<std::int16_t>(
            std::clamp(qv, -1.0, 1.0) * full_scale);
    }
    return w;
}

PulseEntry
PulseSynthesizer::packEntry(const Waveform &w) const
{
    // 640 bits = 10 x 64-bit words = 20 samples x (16-bit I + 16-bit
    // Q): each word carries two samples' I/Q pairs.
    PulseEntry entry{};
    for (std::uint32_t s = 0; s < samplesPerEntry; ++s) {
        const std::uint16_t iv = s < w.numSamples()
            ? static_cast<std::uint16_t>(w.i[s]) : 0;
        const std::uint16_t qv = s < w.numSamples()
            ? static_cast<std::uint16_t>(w.q[s]) : 0;
        const std::uint64_t pair =
            (std::uint64_t(qv) << 16) | std::uint64_t(iv);
        entry[s / 2] |= pair << ((s % 2) * 32);
    }
    return entry;
}

PulseEntry
PulseSynthesizer::entryFor(quantum::GateType type, double angle) const
{
    return packEntry(synthesize(type, angle));
}

} // namespace qtenon::controller
