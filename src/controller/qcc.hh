/**
 * @file
 * The Quantum Controller Cache (QCC): the SRAM buffer at the L1 level
 * of the unified memory hierarchy (paper Sec. 5.1).
 *
 * Holds the five segments' contents functionally, enforces the
 * public/private split (.slt and .pulse are hardware-private), and
 * models SRAM port timing in the 200 MHz controller clock domain.
 */

#ifndef QTENON_CONTROLLER_QCC_HH
#define QTENON_CONTROLLER_QCC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "memory/address_map.hh"
#include "program_entry.hh"
#include "sim/sim_object.hh"

namespace qtenon::controller {

/** A 640-bit generated control pulse (.pulse entry). */
using PulseEntry = std::array<std::uint64_t, 10>;

/**
 * Functional + timing model of the QCC SRAM. QAddresses are
 * entry-granular per memory::QccLayout.
 */
class QuantumControllerCache : public sim::Clocked
{
  public:
    QuantumControllerCache(sim::EventQueue &eq, std::string name,
                           sim::ClockDomain clock,
                           memory::QccLayout layout);

    const memory::QccLayout &layout() const { return _layout; }

    /** @name .program segment */
    /// @{
    const ProgramEntry &readProgram(std::uint64_t qaddr) const;
    void writeProgram(std::uint64_t qaddr, const ProgramEntry &e);
    /** Number of valid program entries installed for @p qubit. */
    std::uint32_t programLength(std::uint32_t qubit) const;
    void setProgramLength(std::uint32_t qubit, std::uint32_t len);
    /// @}

    /** @name .pulse segment (hardware-private) */
    /// @{
    const PulseEntry &readPulse(std::uint64_t qaddr) const;
    void writePulse(std::uint64_t qaddr, const PulseEntry &p);
    bool pulseValid(std::uint64_t qaddr) const;
    /// @}

    /** @name .measure segment */
    /// @{
    std::uint64_t readMeasure(std::uint32_t entry) const;
    void writeMeasure(std::uint32_t entry, std::uint64_t value);
    /// @}

    /** @name .regfile segment */
    /// @{
    std::uint32_t readRegfile(std::uint32_t entry) const;
    void writeRegfile(std::uint32_t entry, std::uint32_t value);
    /// @}

    /**
     * Whether a user-originated access to @p qaddr is legal (public
     * segments only).
     */
    bool userAccessible(std::uint64_t qaddr) const;

    /**
     * SRAM port timing: returns the tick at which an access starting
     * now completes, serializing on the port.
     */
    sim::Tick portAccess(std::uint32_t entries = 1);

    sim::Scalar programReads;
    sim::Scalar programWrites;
    sim::Scalar pulseWrites;
    sim::Scalar measureWrites;
    sim::Scalar regfileWrites;

  private:
    std::uint64_t programIndex(std::uint64_t qaddr) const;
    std::uint64_t pulseIndex(std::uint64_t qaddr) const;

    memory::QccLayout _layout;
    std::vector<ProgramEntry> _program;
    std::vector<PulseEntry> _pulse;
    std::vector<bool> _pulseValid;
    std::vector<std::uint64_t> _measure;
    std::vector<std::uint32_t> _regfile;
    std::vector<std::uint32_t> _programLength;
    sim::Tick _portFree = 0;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_QCC_HH
