#include "controller.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace qtenon::controller {

QuantumController::QuantumController(sim::EventQueue &eq,
                                     std::string name,
                                     ControllerConfig cfg,
                                     memory::TileLinkBus *bus)
    : Clocked(eq, name, sim::ClockDomain::fromHz(cfg.coreFreqHz)),
      _cfg(cfg), _bus(bus),
      _sramClock(sim::ClockDomain::fromHz(cfg.sramFreqHz)),
      _slt(cfg.layout.numQubits, cfg.slt), _adi(cfg.adi),
      _adiIn(AdiModel(cfg.adi), AdiChannel::Direction::Input)
{
    if (!bus)
        sim::fatal("controller '", name, "' needs a system bus");
    _qcc = std::make_unique<QuantumControllerCache>(
        eq, name + ".qcc", _sramClock, cfg.layout);
    _pipeline = std::make_unique<PulsePipeline>(*_qcc, _slt,
                                                cfg.pipeline);

    stats().registerScalar(&roccTransfers, "rocc_transfers",
                           "RoCC register transfers");
    stats().registerScalar(&roccVectorElements, "rocc_vector_elements",
                           "regfile elements moved by q_update.v");
    stats().registerScalar(&setBytes, "set_bytes",
                           "bytes moved by q_set");
    stats().registerScalar(&acquireBytes, "acquire_bytes",
                           "bytes moved by q_acquire");
    stats().registerScalar(&generateRuns, "generate_runs",
                           "q_gen pipeline invocations");
    stats().registerScalar(&pulsesGenerated, "pulses_generated",
                           "control pulses produced by PGUs");
    stats().registerScalar(&barrierQueries, "barrier_queries",
                           "host barrier queries over RoCC");
}

sim::Tick
QuantumController::roccWrite(std::uint64_t qaddr, std::uint64_t data)
{
    if (!_qcc->userAccessible(qaddr))
        sim::fatal("q_update to non-public QAddress 0x", std::hex,
                   qaddr);
    ++roccTransfers;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("controller.rocc.transfers",
                                      "RoCC register transfers");
        c.inc();
    }

    const auto seg = _cfg.layout.segmentOf(qaddr);
    if (seg == memory::QccSegment::Regfile) {
        const auto reg = static_cast<std::uint32_t>(
            qaddr - _cfg.layout.regfileBase());
        QTRACE(Controller, "q_update regfile[", reg, "] = 0x",
               std::hex, data);
        _qcc->writeRegfile(reg, static_cast<std::uint32_t>(data));
        // Invalidate dependent program entries: their pulses must be
        // regenerated at the next q_gen.
        auto it = _regfileLinks.find(reg);
        if (it != _regfileLinks.end()) {
            for (auto pq : it->second) {
                auto e = _qcc->readProgram(pq);
                if (e.status != EntryStatus::Invalid) {
                    e.status = EntryStatus::Invalid;
                    _qcc->writeProgram(pq, e);
                }
                _stale.push_back(pq);
            }
        }
    } else if (seg == memory::QccSegment::Program) {
        // Direct program-entry rewrite over RoCC (low 64 bits of the
        // 65-bit entry; the top type bit rides in data path metadata).
        auto e = ProgramEntry::unpack(data, 0);
        _qcc->writeProgram(qaddr, e);
        _stale.push_back(qaddr);
    } else {
        sim::fatal("q_update targets .regfile or .program, got "
                   "segment ", int(seg));
    }
    // One core cycle, per the paper's RoCC path.
    return clockEdge(1);
}

sim::Tick
QuantumController::roccWriteVector(
    std::uint64_t base_qaddr, std::uint32_t stride,
    const std::vector<std::uint32_t> &values)
{
    if (stride == 0)
        sim::fatal("q_update.v with stride 0");
    if (values.empty())
        sim::fatal("q_update.v with an empty element vector");

    // One instruction, one RoCC transfer — the whole point of the
    // vector form.
    ++roccTransfers;
    roccVectorElements += values.size();
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("controller.rocc.transfers",
                                      "RoCC register transfers");
        c.inc();
        static auto &el = obs::counter(
            "controller.rocc.vector_elements",
            "regfile elements moved by q_update.v");
        el.add(values.size());
    }

    for (std::size_t i = 0; i < values.size(); ++i) {
        const std::uint64_t qaddr = base_qaddr + i * stride;
        if (!_qcc->userAccessible(qaddr))
            sim::fatal("q_update.v lane to non-public QAddress 0x",
                       std::hex, qaddr);
        if (_cfg.layout.segmentOf(qaddr) != memory::QccSegment::Regfile)
            sim::fatal("q_update.v targets .regfile, got QAddress 0x",
                       std::hex, qaddr);
        const auto reg = static_cast<std::uint32_t>(
            qaddr - _cfg.layout.regfileBase());
        // Write-if-different: unchanged lanes neither touch the SRAM
        // nor invalidate dependents, keeping the stale set identical
        // to an equivalent scalar q_update sequence.
        if (_qcc->readRegfile(reg) == values[i])
            continue;
        QTRACE(Controller, "q_update.v regfile[", reg, "] = 0x",
               std::hex, values[i]);
        _qcc->writeRegfile(reg, values[i]);
        auto it = _regfileLinks.find(reg);
        if (it != _regfileLinks.end()) {
            for (auto pq : it->second) {
                auto e = _qcc->readProgram(pq);
                if (e.status != EntryStatus::Invalid) {
                    e.status = EntryStatus::Invalid;
                    _qcc->writeProgram(pq, e);
                }
                _stale.push_back(pq);
            }
        }
    }
    // Dispatch cycle plus two 32-bit elements per cycle over the
    // 64-bit RoCC operand path.
    return clockEdge(1 + (values.size() + 1) / 2);
}

sim::Tick
QuantumController::roccRead(std::uint64_t qaddr,
                            std::uint64_t &data) const
{
    if (!_qcc->userAccessible(qaddr))
        sim::fatal("RoCC read from non-public QAddress 0x", std::hex,
                   qaddr);
    const_cast<QuantumController *>(this)->roccTransfers++;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("controller.rocc.transfers",
                                      "RoCC register transfers");
        c.inc();
    }

    const auto seg = _cfg.layout.segmentOf(qaddr);
    if (seg == memory::QccSegment::Measure) {
        data = _qcc->readMeasure(static_cast<std::uint32_t>(
            qaddr - _cfg.layout.measureBase()));
    } else if (seg == memory::QccSegment::Regfile) {
        data = _qcc->readRegfile(static_cast<std::uint32_t>(
            qaddr - _cfg.layout.regfileBase()));
    } else {
        std::uint64_t lo, hi;
        _qcc->readProgram(qaddr).pack(lo, hi);
        data = lo;
    }
    return clockEdge(1);
}

bool
QuantumController::barrierQuery(std::uint64_t host_addr,
                                std::uint64_t size)
{
    ++barrierQueries;
    return _barrier.query(host_addr, size);
}

void
QuantumController::dmaSetProgram(std::uint64_t host_addr,
                                 std::uint32_t qubit,
                                 std::vector<ProgramEntry> entries,
                                 DoneCallback done)
{
    const auto &layout = _cfg.layout;
    if (qubit >= layout.numQubits)
        sim::fatal("q_set on out-of-range qubit ", qubit);
    if (entries.size() > layout.programEntriesPerQubit)
        sim::fatal("q_set of ", entries.size(),
                   " entries exceeds the program chunk");

    const std::uint64_t total_bytes =
        entries.size() * _cfg.programEntryHostBytes;
    QTRACE(Controller, "q_set qubit ", qubit, ": ", entries.size(),
           " entries (", total_bytes, " bytes)");
    setBytes += static_cast<double>(total_bytes);
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("controller.dma.set_bytes",
                                      "bytes moved by q_set");
        c.add(total_bytes);
    }

    const std::uint32_t chunk = _cfg.dmaChunkBytes;
    const std::uint64_t num_chunks =
        std::max<std::uint64_t>(1, (total_bytes + chunk - 1) / chunk);

    // Install functionally now; timing is carried by the bus events.
    auto shared_entries =
        std::make_shared<std::vector<ProgramEntry>>(std::move(entries));
    auto remaining = std::make_shared<std::uint64_t>(num_chunks);
    auto cb = std::make_shared<DoneCallback>(std::move(done));

    for (std::uint64_t c = 0; c < num_chunks; ++c) {
        memory::MemPacket pkt;
        pkt.cmd = memory::MemCmd::Read;
        pkt.addr = host_addr + c * chunk;
        pkt.size = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, total_bytes - c * chunk));

        _bus->accessTagged(pkt,
            [this, shared_entries, remaining, cb, qubit,
             num_chunks](const memory::BusResponse &resp) {
                _rbq.arrive(resp.tag, resp,
                    [this](std::uint8_t,
                           const memory::BusResponse &r) {
                        // Stage the beat's words in the WBQ; they
                        // drain into the SRAM one word per cycle.
                        const std::uint32_t words =
                            (r.pkt.size + 3) / 4;
                        _wbq.enqueue(words);
                        const sim::Tick start = std::max(
                            r.completed, _wbqDrainFree);
                        _wbqDrainFree = start +
                            _sramClock.cyclesToTicks(words);
                        _wbq.drain(words);
                        if (obs::metricsEnabled()) {
                            static auto &wq_words = obs::counter(
                                "controller.wbq.drained_words",
                                "32-bit words drained into the SRAM");
                            static auto &wq_wait = obs::histogram(
                                "controller.wbq.drain_wait_ticks",
                                "beat arrival to drain-start backlog");
                            wq_words.add(words);
                            wq_wait.record(start - r.completed);
                        }
                    });
                if (--(*remaining) == 0) {
                    // Install entries and finish when the WBQ drains.
                    const auto &layout = _cfg.layout;
                    for (std::size_t i = 0;
                         i < shared_entries->size(); ++i) {
                        _qcc->writeProgram(
                            layout.programAddr(
                                qubit,
                                static_cast<std::uint32_t>(i)),
                            (*shared_entries)[i]);
                    }
                    _qcc->setProgramLength(
                        qubit, static_cast<std::uint32_t>(
                                   shared_entries->size()));
                    const sim::Tick fin =
                        std::max(curTick(), _wbqDrainFree);
                    eventq().scheduleLambda(fin,
                        [cb, fin] { (*cb)(fin); }, "q_set done");
                }
            },
            [this](std::uint8_t tag, sim::Tick) {
                _rbq.expect(tag);
                if (obs::metricsEnabled()) {
                    static auto &rq_occ = obs::histogram(
                        "controller.rbq.tag_occupancy",
                        "in-flight RBQ tags after each expect");
                    rq_occ.record(_rbq.pending());
                }
            });
    }
}

void
QuantumController::dmaAcquire(std::uint64_t host_addr,
                              std::uint32_t first_entry,
                              std::uint32_t num_entries,
                              DoneCallback done)
{
    const std::uint64_t total_bytes = std::uint64_t(num_entries) *
        memory::QccLayout::measureEntryBits / 8;
    acquireBytes += static_cast<double>(total_bytes);
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("controller.dma.acquire_bytes",
                                      "bytes moved by q_acquire");
        c.add(total_bytes);
    }
    _barrier.declare(host_addr, total_bytes);

    // Read the .measure SRAM (port-serialized), then PUT to host.
    _qcc->portAccess(num_entries);
    (void)first_entry;

    const std::uint32_t chunk = _cfg.dmaChunkBytes;
    const std::uint64_t num_chunks =
        std::max<std::uint64_t>(1, (total_bytes + chunk - 1) / chunk);
    auto remaining = std::make_shared<std::uint64_t>(num_chunks);
    auto latest = std::make_shared<sim::Tick>(0);
    auto cb = std::make_shared<DoneCallback>(std::move(done));

    for (std::uint64_t c = 0; c < num_chunks; ++c) {
        memory::MemPacket pkt;
        pkt.cmd = memory::MemCmd::Write;
        pkt.addr = host_addr + c * chunk;
        pkt.size = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, total_bytes - c * chunk));

        _bus->accessTagged(pkt,
            [remaining, latest, cb](const memory::BusResponse &resp) {
                *latest = std::max(*latest, resp.completed);
                if (--(*remaining) == 0)
                    (*cb)(*latest);
            },
            [this, pkt](std::uint8_t, sim::Tick) {
                // The barrier goes valid once the PUT has been sent
                // through the system bus (Sec. 6.2).
                _barrier.markSynced(pkt.addr, pkt.size);
            });
    }
}

void
QuantumController::generate(std::vector<std::uint64_t> work,
                            std::function<void(const PipelineResult &,
                                               sim::Tick)> done)
{
    ++generateRuns;
    QTRACE(Pipeline, "q_gen over ", work.size(), " entries");
    auto result = _pipeline->run(work);
    pulsesGenerated += static_cast<double>(result.pulsesGenerated);
    _stale.clear();
    const sim::Tick fin = clockEdge(result.cycles);
    observeGenerate(result, fin);
    eventq().scheduleLambda(fin,
        [done = std::move(done), result, fin] { done(result, fin); },
        "q_gen done");
}

void
QuantumController::observeGenerate(const PipelineResult &result,
                                   sim::Tick fin)
{
    if (obs::metricsEnabled()) {
        static auto &runs = obs::counter(
            "controller.pipeline.runs", "q_gen pipeline invocations");
        static auto &cycles = obs::counter(
            "controller.pipeline.cycles",
            "pipeline cycles across all q_gen runs");
        static auto &entries = obs::counter(
            "controller.pipeline.entries",
            "program entries processed");
        static auto &pulses = obs::counter(
            "controller.pipeline.pulses_generated",
            "pulses produced by PGUs");
        static auto &slt_hits = obs::counter(
            "controller.slt.hits", "SLT skip-lookup hits");
        static auto &slt_misses = obs::counter(
            "controller.slt.misses", "SLT skip-lookup misses");
        static auto &qspace_hits = obs::counter(
            "controller.slt.qspace_hits",
            "SLT lookups served from QSpace");
        static auto &skipped = obs::counter(
            "controller.pipeline.skipped_valid",
            "entries skipped with a valid pulse");
        static auto &stalls = obs::counter(
            "controller.pipeline.pgu_stall_cycles",
            "cycles stage 3 stalled on busy PGUs");
        static auto &s1 = obs::counter(
            "controller.pipeline.stage1_busy_cycles",
            "cycles stage 1 (fetch) did work");
        static auto &s2 = obs::counter(
            "controller.pipeline.stage2_busy_cycles",
            "cycles stage 2 (decode+SLT) did work");
        static auto &s3 = obs::counter(
            "controller.pipeline.stage3_busy_cycles",
            "cycles stage 3 (PGU dispatch) did work");
        static auto &s4 = obs::counter(
            "controller.pipeline.stage4_busy_cycles",
            "cycles stage 4 (arbiter writeback) did work");
        static auto &run_cycles = obs::histogram(
            "controller.pipeline.run_cycles",
            "cycles per q_gen pipeline run");
        runs.inc();
        cycles.add(result.cycles);
        entries.add(result.entriesProcessed);
        pulses.add(result.pulsesGenerated);
        slt_hits.add(result.sltHits);
        slt_misses.add(result.sltMisses);
        qspace_hits.add(result.qspaceHits);
        skipped.add(result.skippedValid);
        stalls.add(result.pguStallCycles);
        s1.add(result.stage1BusyCycles);
        s2.add(result.stage2BusyCycles);
        s3.add(result.stage3BusyCycles);
        s4.add(result.stage4BusyCycles);
        run_cycles.record(result.cycles);
    }

    auto *sink = obs::traceSink();
    if (!sink)
        return;
    if (_tracePid == 0) {
        _tracePid = sink->allocProcess(name() + " (sim time)");
        sink->threadName(_tracePid, 0, "q_gen");
        sink->threadName(_tracePid, 1, "stage1 fetch");
        sink->threadName(_tracePid, 2, "stage2 decode+SLT");
        sink->threadName(_tracePid, 3, "stage3 PGU dispatch");
        sink->threadName(_tracePid, 4, "stage4 arbiter");
    }
    const double t0 = sim::ticksToUs(curTick());
    const auto &cd = clockDomain();
    sink->complete(
        _tracePid, 0, "q_gen", "controller", t0,
        sim::ticksToUs(fin - curTick()),
        {{"entries", std::to_string(result.entriesProcessed)},
         {"pulses", std::to_string(result.pulsesGenerated)},
         {"slt_hits", std::to_string(result.sltHits)},
         {"slt_misses", std::to_string(result.sltMisses)}});
    const auto stage = [&](std::uint64_t tid, const char *nm,
                           sim::Cycles busy) {
        sink->complete(_tracePid, tid, nm, "controller.stage", t0,
                       sim::ticksToUs(cd.cyclesToTicks(busy)),
                       {{"busy_cycles", std::to_string(busy)}});
    };
    stage(1, "stage1.fetch", result.stage1BusyCycles);
    stage(2, "stage2.decode-slt", result.stage2BusyCycles);
    stage(3, "stage3.pgu-dispatch", result.stage3BusyCycles);
    stage(4, "stage4.arbiter", result.stage4BusyCycles);
}

void
QuantumController::generateAll(
    std::function<void(const PipelineResult &, sim::Tick)> done)
{
    const auto &layout = _cfg.layout;
    std::vector<std::uint64_t> work;
    for (std::uint32_t q = 0; q < layout.numQubits; ++q) {
        const auto len = _qcc->programLength(q);
        for (std::uint32_t i = 0; i < len; ++i)
            work.push_back(layout.programAddr(q, i));
    }
    generate(std::move(work), std::move(done));
}

void
QuantumController::recordMeasurement(std::uint32_t entry,
                                     std::uint64_t bits)
{
    _qcc->writeMeasure(entry, bits);
}

void
QuantumController::linkRegfile(std::uint32_t reg,
                               std::uint64_t program_qaddr)
{
    _regfileLinks[reg].push_back(program_qaddr);
}

void
QuantumController::clearRegfileLinks()
{
    _regfileLinks.clear();
    _stale.clear();
}

std::vector<std::uint64_t>
QuantumController::staleProgramEntries() const
{
    auto stale = _stale;
    std::sort(stale.begin(), stale.end());
    stale.erase(std::unique(stale.begin(), stale.end()), stale.end());
    return stale;
}

} // namespace qtenon::controller
