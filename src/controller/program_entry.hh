/**
 * @file
 * The packed 65-bit .program entry (paper Table 2 / Fig. 6):
 *
 *   type (4b) | reg_flag (1b) | data (27b) | status (3b) | qaddr (30b)
 *
 * `type` encodes the gate kind; `data` holds either a fixed-point
 * rotation angle or, when reg_flag is set, a .regfile index; `status`
 * says whether `qaddr` (the .pulse location of the generated control
 * pulse) is valid.
 */

#ifndef QTENON_CONTROLLER_PROGRAM_ENTRY_HH
#define QTENON_CONTROLLER_PROGRAM_ENTRY_HH

#include <cstdint>

#include "quantum/gate.hh"

namespace qtenon::controller {

/** Entry status codes (3-bit field). */
enum class EntryStatus : std::uint8_t {
    /** QAddress not assigned yet; pulse must be generated. */
    Invalid = 0,
    /** QAddress valid and the pulse is present in .pulse. */
    Valid = 1,
    /** Pulse generation in flight. */
    Pending = 2,
};

/** One .program entry, with pack/unpack to the 65-bit layout. */
struct ProgramEntry {
    static constexpr std::uint32_t typeBits = 4;
    static constexpr std::uint32_t dataBits = 27;
    static constexpr std::uint32_t statusBits = 3;
    static constexpr std::uint32_t qaddrBits = 30;
    static constexpr std::uint32_t totalBits =
        typeBits + 1 + dataBits + statusBits + qaddrBits;

    std::uint8_t type = 0;
    bool regFlag = false;
    std::uint32_t data = 0;
    EntryStatus status = EntryStatus::Invalid;
    std::uint32_t qaddr = 0;

    /**
     * Fixed-point angle codec for the data field: signed angle in
     * [-4pi, 4pi) quantized to 27 bits.
     */
    static std::uint32_t encodeAngle(double radians);
    static double decodeAngle(std::uint32_t code);

    /** Gate type <-> 4-bit code. */
    static std::uint8_t encodeType(quantum::GateType t);
    static quantum::GateType decodeType(std::uint8_t code);

    /** Pack to the 65-bit wire layout (hi bit in `hi`). */
    void
    pack(std::uint64_t &lo, std::uint64_t &hi) const
    {
        std::uint64_t v = 0;
        // [63:60] type, [59] reg_flag, [58:32] data, [32:30]... the
        // paper's Fig. 6 bit ranges overlap in print; we adopt the
        // consistent layout below, matching field widths exactly:
        // bit 64..61 type, 60 reg_flag, 59..33 data, 32..30 status,
        // 29..0 qaddr.
        v |= std::uint64_t(qaddr & ((1u << qaddrBits) - 1));
        v |= std::uint64_t(static_cast<std::uint8_t>(status) & 0x7)
            << qaddrBits;
        v |= std::uint64_t(data & ((1u << dataBits) - 1)) << 33;
        v |= std::uint64_t(regFlag ? 1 : 0) << 60;
        // type occupies bits 64..61; bits 63..61 go in lo, bit 64 in hi
        v |= std::uint64_t(type & 0x7) << 61;
        lo = v;
        hi = (type >> 3) & 0x1;
    }

    static ProgramEntry
    unpack(std::uint64_t lo, std::uint64_t hi)
    {
        ProgramEntry e;
        e.qaddr = static_cast<std::uint32_t>(
            lo & ((1u << qaddrBits) - 1));
        e.status = static_cast<EntryStatus>((lo >> qaddrBits) & 0x7);
        e.data = static_cast<std::uint32_t>(
            (lo >> 33) & ((1u << dataBits) - 1));
        e.regFlag = (lo >> 60) & 0x1;
        e.type = static_cast<std::uint8_t>(
            ((lo >> 61) & 0x7) | ((hi & 0x1) << 3));
        return e;
    }

    bool
    operator==(const ProgramEntry &o) const
    {
        return type == o.type && regFlag == o.regFlag &&
            data == o.data && status == o.status && qaddr == o.qaddr;
    }
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_PROGRAM_ENTRY_HH
