/**
 * @file
 * The Reorder Buffer Queue (RBQ), paper Sec. 5.2 / Fig. 5.
 *
 * The system bus returns responses out of order; the RBQ holds one
 * queue per 5-bit tag (32 total) and a tag queue recording issue
 * order, releasing responses strictly in that order.
 */

#ifndef QTENON_CONTROLLER_RBQ_HH
#define QTENON_CONTROLLER_RBQ_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace qtenon::controller {

/**
 * In-order release of out-of-order tagged responses. The caller
 * declares issue order via expect(tag); responses arrive via
 * arrive(tag, payload); deliveries fire in expect() order.
 */
template <typename Payload>
class ReorderBufferQueue
{
  public:
    using Deliver = std::function<void(std::uint8_t, const Payload &)>;

    explicit ReorderBufferQueue(std::uint32_t num_tags = 32)
        : _arrived(num_tags), _numTags(num_tags)
    {}

    /** Record that a request with @p tag was issued (in order). */
    void
    expect(std::uint8_t tag)
    {
        _order.push_back(tag);
        _maxOccupancy = std::max(_maxOccupancy, _order.size());
    }

    /**
     * A response for @p tag arrived; deliver it and any now-unblocked
     * successors through @p deliver.
     */
    void
    arrive(std::uint8_t tag, Payload payload, const Deliver &deliver)
    {
        _arrived[tag].push_back(std::move(payload));
        if (!_order.empty() && _order.front() != tag)
            ++_reordered;
        drain(deliver);
    }

    /** Pending (issued, not yet delivered) responses. */
    std::size_t pending() const { return _order.size(); }

    std::size_t maxOccupancy() const { return _maxOccupancy; }
    std::uint64_t reorderedArrivals() const { return _reordered; }

  private:
    void
    drain(const Deliver &deliver)
    {
        while (!_order.empty()) {
            const auto tag = _order.front();
            auto &q = _arrived[tag];
            if (q.empty())
                return;
            Payload p = std::move(q.front());
            q.pop_front();
            _order.pop_front();
            deliver(tag, p);
        }
    }

    std::deque<std::uint8_t> _order;
    std::vector<std::deque<Payload>> _arrived;
    std::uint32_t _numTags;
    std::size_t _maxOccupancy = 0;
    std::uint64_t _reordered = 0;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_RBQ_HH
