#include "qcc.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace qtenon::controller {

QuantumControllerCache::QuantumControllerCache(sim::EventQueue &eq,
                                               std::string name,
                                               sim::ClockDomain clock,
                                               memory::QccLayout layout)
    : Clocked(eq, std::move(name), clock), _layout(layout)
{
    const auto n_prog =
        std::uint64_t(_layout.numQubits) * _layout.programEntriesPerQubit;
    const auto n_pulse =
        std::uint64_t(_layout.numQubits) * _layout.pulseEntriesPerQubit;
    _program.assign(n_prog, ProgramEntry{});
    _pulse.assign(n_pulse, PulseEntry{});
    _pulseValid.assign(n_pulse, false);
    _measure.assign(_layout.measureEntries, 0);
    _regfile.assign(_layout.regfileEntries, 0);
    _programLength.assign(_layout.numQubits, 0);

    stats().registerScalar(&programReads, "program_reads",
                           ".program entries read");
    stats().registerScalar(&programWrites, "program_writes",
                           ".program entries written");
    stats().registerScalar(&pulseWrites, "pulse_writes",
                           ".pulse entries written");
    stats().registerScalar(&measureWrites, "measure_writes",
                           ".measure entries written");
    stats().registerScalar(&regfileWrites, "regfile_writes",
                           ".regfile entries written");
}

std::uint64_t
QuantumControllerCache::programIndex(std::uint64_t qaddr) const
{
    if (_layout.segmentOf(qaddr) != memory::QccSegment::Program)
        sim::panic("QAddress 0x", std::hex, qaddr, " not in .program");
    return qaddr - _layout.programBase();
}

std::uint64_t
QuantumControllerCache::pulseIndex(std::uint64_t qaddr) const
{
    if (_layout.segmentOf(qaddr) != memory::QccSegment::Pulse)
        sim::panic("QAddress 0x", std::hex, qaddr, " not in .pulse");
    return qaddr - _layout.pulseBase();
}

const ProgramEntry &
QuantumControllerCache::readProgram(std::uint64_t qaddr) const
{
    const_cast<QuantumControllerCache *>(this)->programReads++;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("mem.qcc.program_reads",
                                      ".program entries read");
        c.inc();
    }
    return _program[programIndex(qaddr)];
}

void
QuantumControllerCache::writeProgram(std::uint64_t qaddr,
                                     const ProgramEntry &e)
{
    ++programWrites;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("mem.qcc.program_writes",
                                      ".program entries written");
        c.inc();
    }
    _program[programIndex(qaddr)] = e;
}

std::uint32_t
QuantumControllerCache::programLength(std::uint32_t qubit) const
{
    if (qubit >= _layout.numQubits)
        sim::panic("qubit ", qubit, " out of range");
    return _programLength[qubit];
}

void
QuantumControllerCache::setProgramLength(std::uint32_t qubit,
                                         std::uint32_t len)
{
    if (qubit >= _layout.numQubits)
        sim::panic("qubit ", qubit, " out of range");
    if (len > _layout.programEntriesPerQubit) {
        sim::fatal("program for qubit ", qubit, " (", len,
                   " entries) exceeds the ",
                   _layout.programEntriesPerQubit, "-entry chunk");
    }
    _programLength[qubit] = len;
}

const PulseEntry &
QuantumControllerCache::readPulse(std::uint64_t qaddr) const
{
    return _pulse[pulseIndex(qaddr)];
}

void
QuantumControllerCache::writePulse(std::uint64_t qaddr,
                                   const PulseEntry &p)
{
    ++pulseWrites;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("mem.qcc.pulse_writes",
                                      ".pulse entries written");
        c.inc();
    }
    const auto idx = pulseIndex(qaddr);
    _pulse[idx] = p;
    _pulseValid[idx] = true;
}

bool
QuantumControllerCache::pulseValid(std::uint64_t qaddr) const
{
    return _pulseValid[pulseIndex(qaddr)];
}

std::uint64_t
QuantumControllerCache::readMeasure(std::uint32_t entry) const
{
    if (entry >= _measure.size())
        sim::panic(".measure entry ", entry, " out of range");
    return _measure[entry];
}

void
QuantumControllerCache::writeMeasure(std::uint32_t entry,
                                     std::uint64_t value)
{
    if (entry >= _measure.size())
        sim::panic(".measure entry ", entry, " out of range");
    ++measureWrites;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("mem.qcc.measure_writes",
                                      ".measure entries written");
        c.inc();
    }
    _measure[entry] = value;
}

std::uint32_t
QuantumControllerCache::readRegfile(std::uint32_t entry) const
{
    if (entry >= _regfile.size())
        sim::panic(".regfile entry ", entry, " out of range");
    return _regfile[entry];
}

void
QuantumControllerCache::writeRegfile(std::uint32_t entry,
                                     std::uint32_t value)
{
    if (entry >= _regfile.size())
        sim::panic(".regfile entry ", entry, " out of range");
    ++regfileWrites;
    if (obs::metricsEnabled()) {
        static auto &c = obs::counter("mem.qcc.regfile_writes",
                                      ".regfile entries written");
        c.inc();
    }
    _regfile[entry] = value;
}

bool
QuantumControllerCache::userAccessible(std::uint64_t qaddr) const
{
    return memory::isPublicSegment(_layout.segmentOf(qaddr));
}

sim::Tick
QuantumControllerCache::portAccess(std::uint32_t entries)
{
    const sim::Tick start = std::max(curTick(), _portFree);
    _portFree = start + clockDomain().cyclesToTicks(
        std::max(1u, entries));
    return _portFree;
}

} // namespace qtenon::controller
