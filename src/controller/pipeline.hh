/**
 * @file
 * The four-stage pulse-computation pipeline (paper Sec. 5.3, Fig. 6).
 *
 *   Stage 1  read the circuit definition from the Program Index
 *            Buffer (the .program segment) at the PC
 *   Stage 2  decode: fetch .regfile data when the R flag is set;
 *            when the entry's QAddress is invalid, query the SLT
 *            (hit -> skip generation; miss -> allocate)
 *   Stage 3  priority-encode a free PGU and dispatch; when all PGUs
 *            are busy, stall stages 1-2 (stage 4 is decoupled by a
 *            ready/valid interface)
 *   Stage 4  arbiter selects one finished PGU per cycle and writes
 *            the pulse to its .pulse QAddress
 *
 * The model is cycle-stepped in the pipeline clock domain with
 * fast-forwarding across cycles where every stage is blocked on PGU
 * completion, so large programs simulate quickly without losing
 * cycle accuracy.
 */

#ifndef QTENON_CONTROLLER_PIPELINE_HH
#define QTENON_CONTROLLER_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "pulse_synth.hh"
#include "qcc.hh"
#include "slt.hh"
#include "sim/sim_object.hh"

namespace qtenon::controller {

/** Pipeline and PGU parameters (Table 4: 8 PGUs, 1000-cycle latency). */
struct PipelineConfig {
    std::uint32_t numPgus = 8;
    sim::Cycles pguLatency = 1000;
    /**
     * Ablation switch: with the SLT disabled every entry allocates a
     * fresh pulse slot and regenerates, as a controller without the
     * skip path would.
     */
    bool sltEnabled = true;
};

/** Aggregate result of one q_gen pipeline run. */
struct PipelineResult {
    sim::Cycles cycles = 0;
    std::uint64_t entriesProcessed = 0;
    std::uint64_t pulsesGenerated = 0;
    std::uint64_t sltHits = 0;
    std::uint64_t sltMisses = 0;
    std::uint64_t qspaceHits = 0;
    std::uint64_t skippedValid = 0;
    sim::Cycles pguStallCycles = 0;
    /**
     * Cycles each stage did useful work (fetch, decode+SLT, PGU
     * dispatch, arbiter writeback) — the per-stage decomposition the
     * observability layer turns into trace spans and histograms.
     */
    sim::Cycles stage1BusyCycles = 0;
    sim::Cycles stage2BusyCycles = 0;
    sim::Cycles stage3BusyCycles = 0;
    sim::Cycles stage4BusyCycles = 0;

    double
    skipRate() const
    {
        return entriesProcessed
            ? 1.0 - static_cast<double>(pulsesGenerated) /
                  static_cast<double>(entriesProcessed)
            : 0.0;
    }
};

/**
 * The pulse pipeline. Owns the PGU pool; borrows the QCC (for
 * .program/.regfile/.pulse state) and the SLT.
 */
class PulsePipeline
{
  public:
    PulsePipeline(QuantumControllerCache &qcc, SkipLookupTable &slt,
                  PipelineConfig cfg = PipelineConfig{});

    const PipelineConfig &config() const { return _cfg; }

    /**
     * Process the given .program QAddresses (one per gate needing
     * attention) and return the cycle-level result. The QCC's
     * program/pulse state is updated in place.
     */
    PipelineResult run(const std::vector<std::uint64_t> &work);

    /**
     * Convenience: process every installed program entry of every
     * qubit (a full q_gen).
     */
    PipelineResult runAll();

  private:
    /** A decoded entry travelling between stages. */
    struct InFlight {
        std::uint64_t programQaddr = 0;
        std::uint32_t qubit = 0;
        ProgramEntry entry;
        std::uint64_t pulseQaddr = 0;
        /** Cycle at which stage 2 releases it (QSpace delays). */
        sim::Cycles readyCycle = 0;
    };

    /** One pulse generation unit. */
    struct Pgu {
        bool busy = false;
        sim::Cycles doneCycle = 0;
        std::uint64_t pulseQaddr = 0;
        std::uint64_t programQaddr = 0;
    };

    /** Synthesize the waveform entry for a program entry. */
    PulseEntry synthesizePulse(const ProgramEntry &e,
                               std::uint32_t qubit) const;

    QuantumControllerCache &_qcc;
    SkipLookupTable &_slt;
    PipelineConfig _cfg;
    PulseSynthesizer _synth;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_PIPELINE_HH
