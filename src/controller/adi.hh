/**
 * @file
 * The Analog-Digital Interface (ADI) model, data path 4 of the
 * controller (paper Sec. 5.2).
 *
 * Each qubit is driven by two 16-bit 2 GHz DACs, demanding
 * 64 bits/ns (8 GB/s) per qubit. A 640-bit .pulse entry is spread
 * over ten parallel 64-bit buffers and serialized by a SerDes at the
 * DAC rate; readout returns through ADCs with a fixed interface
 * latency per direction.
 */

#ifndef QTENON_CONTROLLER_ADI_HH
#define QTENON_CONTROLLER_ADI_HH

#include <cstdint>

#include "link/channel.hh"
#include "sim/types.hh"

namespace qtenon::controller {

/** ADI physical parameters. */
struct AdiConfig {
    std::uint32_t dacBits = 16;
    std::uint32_t dacsPerQubit = 2;
    std::uint64_t dacRateHz = 2'000'000'000ull;
    /** SRAM clock feeding the SerDes buffers. */
    std::uint64_t sramFreqHz = 200'000'000ull;
    /** Pulse entry width fed into the SerDes. */
    std::uint32_t pulseEntryBits = 640;
    std::uint32_t serdesBuffers = 10;
    /** Fixed interface latency, each direction. */
    sim::Tick interfaceLatency = 100 * sim::nsTicks;
};

/** Bandwidth arithmetic + latency helpers for the ADI. */
class AdiModel
{
  public:
    explicit AdiModel(AdiConfig cfg = AdiConfig{}) : _cfg(cfg) {}

    const AdiConfig &config() const { return _cfg; }

    /** Required DAC bandwidth per qubit in bits per nanosecond. */
    double
    requiredBitsPerNs() const
    {
        return static_cast<double>(_cfg.dacBits) * _cfg.dacsPerQubit *
            (_cfg.dacRateHz / 1e9);
    }

    /** SRAM-side supply in bits per nanosecond (entry per cycle). */
    double
    suppliedBitsPerNs() const
    {
        return static_cast<double>(_cfg.pulseEntryBits) *
            (_cfg.sramFreqHz / 1e9);
    }

    /** Whether the SRAM + SerDes can keep the DACs fed. */
    bool bandwidthSufficient() const
    {
        return suppliedBitsPerNs() >= requiredBitsPerNs();
    }

    /** Time for the DACs to play out one pulse entry. */
    sim::Tick
    entryPlayTime() const
    {
        const double ns = static_cast<double>(_cfg.pulseEntryBits) /
            requiredBitsPerNs();
        return static_cast<sim::Tick>(ns * sim::nsTicks);
    }

    /** Output-path latency for a control stream of @p entries. */
    sim::Tick
    outputLatency(std::uint64_t entries) const
    {
        return _cfg.interfaceLatency + entries * entryPlayTime();
    }

    /** Readout-path latency (ADC direction). */
    sim::Tick inputLatency() const { return _cfg.interfaceLatency; }

  private:
    AdiConfig _cfg;
};

/**
 * `link::Channel` adapter over `AdiModel` (injection site "adi").
 * One adapter per direction: Output transfers are measured in pulse
 * entries (the byte count is the entry count), Input transfers are
 * readout words at the fixed interface latency.
 */
class AdiChannel : public link::Channel
{
  public:
    enum class Direction { Output, Input };

    explicit AdiChannel(AdiModel model,
                        Direction dir = Direction::Input)
        : link::Channel("adi"), _model(model), _dir(dir)
    {}

    const AdiModel &model() const { return _model; }

    sim::Tick
    transferLatency(std::uint64_t units) const override
    {
        return _dir == Direction::Output ? _model.outputLatency(units)
                                         : _model.inputLatency();
    }

  private:
    AdiModel _model;
    Direction _dir;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_ADI_HH
