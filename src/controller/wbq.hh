/**
 * @file
 * The Write Buffer Queue (WBQ), paper Sec. 5.2 / Fig. 5.
 *
 * Bridges the 256-bit system-bus datapath to the 32-bit-granular
 * public QCC segments: eight separate 32-bit lanes, each fed by one
 * 32-bit slice of an incoming beat; an SIndex selects the write
 * destination as lanes drain.
 */

#ifndef QTENON_CONTROLLER_WBQ_HH
#define QTENON_CONTROLLER_WBQ_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace qtenon::controller {

/** Occupancy/timing model of the eight-lane write buffer. */
class WriteBufferQueue
{
  public:
    explicit WriteBufferQueue(std::uint32_t lanes = 8,
                              std::uint32_t depth_words = 16)
        : _depth(depth_words), _laneWords(lanes, 0)
    {}

    std::uint32_t numLanes() const
    {
        return static_cast<std::uint32_t>(_laneWords.size());
    }

    /**
     * Try to accept @p words 32-bit words from one bus beat, spread
     * round-robin across lanes. Returns false when any needed lane
     * is full (the bus response must retry next cycle).
     */
    bool
    enqueue(std::uint32_t words)
    {
        const auto lanes = numLanes();
        std::vector<std::uint32_t> add(lanes, 0);
        for (std::uint32_t w = 0; w < words; ++w)
            ++add[(_nextLane + w) % lanes];
        for (std::uint32_t l = 0; l < lanes; ++l) {
            if (_laneWords[l] + add[l] > _depth) {
                ++_fullRejects;
                return false;
            }
        }
        for (std::uint32_t l = 0; l < lanes; ++l)
            _laneWords[l] += add[l];
        _nextLane = (_nextLane + words) % lanes;
        _enqueuedWords += words;
        _maxOccupancy = std::max(_maxOccupancy, occupancy());
        return true;
    }

    /**
     * Drain up to @p max_words words this cycle (SIndex write into
     * the public space). Returns how many drained.
     */
    std::uint32_t
    drain(std::uint32_t max_words)
    {
        std::uint32_t drained = 0;
        const auto lanes = numLanes();
        while (drained < max_words) {
            // Drain the fullest lane first.
            auto it = std::max_element(_laneWords.begin(),
                                       _laneWords.end());
            if (*it == 0)
                break;
            --(*it);
            ++drained;
        }
        (void)lanes;
        _drainedWords += drained;
        return drained;
    }

    /** Total buffered words across lanes. */
    std::uint32_t
    occupancy() const
    {
        std::uint32_t sum = 0;
        for (auto w : _laneWords)
            sum += w;
        return sum;
    }

    std::uint32_t laneOccupancy(std::uint32_t lane) const
    {
        return _laneWords[lane];
    }

    std::uint64_t enqueuedWords() const { return _enqueuedWords; }
    std::uint64_t drainedWords() const { return _drainedWords; }
    std::uint64_t fullRejects() const { return _fullRejects; }
    std::uint32_t maxOccupancy() const { return _maxOccupancy; }

  private:
    std::uint32_t _depth;
    std::vector<std::uint32_t> _laneWords;
    std::uint32_t _nextLane = 0;
    std::uint64_t _enqueuedWords = 0;
    std::uint64_t _drainedWords = 0;
    std::uint64_t _fullRejects = 0;
    std::uint32_t _maxOccupancy = 0;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_WBQ_HH
