/**
 * @file
 * The Qtenon quantum controller (paper Sec. 5.2): ties together the
 * QCC, the per-qubit SLTs, the pulse pipeline, the RBQ/WBQ bus
 * machinery, the soft memory barrier, and the ADI, and exposes the
 * operations the five ISA instructions map onto:
 *
 *   data path 1  roccWrite / roccRead (host register <-> public QCC)
 *   data path 2  dmaSet / dmaAcquire  (host L2 <-> public QCC)
 *   data path 3  QSpace traffic inside the SLT (host L2 <-> private)
 *   data path 4  the ADI toward the quantum chip
 */

#ifndef QTENON_CONTROLLER_CONTROLLER_HH
#define QTENON_CONTROLLER_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "adi.hh"
#include "barrier.hh"
#include "memory/tilelink.hh"
#include "pipeline.hh"
#include "qcc.hh"
#include "rbq.hh"
#include "slt.hh"
#include "wbq.hh"

namespace qtenon::controller {

/** Complete controller configuration. */
struct ControllerConfig {
    memory::QccLayout layout;
    SltConfig slt;
    PipelineConfig pipeline;
    AdiConfig adi;
    /** Core-side clock (RoCC, pipeline). */
    std::uint64_t coreFreqHz = 1'000'000'000ull;
    /** QCC SRAM clock. */
    std::uint64_t sramFreqHz = 200'000'000ull;
    /** Host-memory footprint of one serialized program entry. */
    std::uint32_t programEntryHostBytes = 12;
    /** Bus chunk used for DMA transfers. */
    std::uint32_t dmaChunkBytes = 64;
};

/** Completion callback carrying the finish tick. */
using DoneCallback = std::function<void(sim::Tick)>;

/** The controller proper. */
class QuantumController : public sim::Clocked
{
  public:
    QuantumController(sim::EventQueue &eq, std::string name,
                      ControllerConfig cfg, memory::TileLinkBus *bus);

    const ControllerConfig &config() const { return _cfg; }
    QuantumControllerCache &qcc() { return *_qcc; }
    SkipLookupTable &slt() { return _slt; }
    MemoryBarrier &barrier() { return _barrier; }
    const AdiModel &adi() const { return _adi; }
    PulsePipeline &pipeline() { return *_pipeline; }

    /** The ADI's `link::Channel` view (injection site "adi"). */
    AdiChannel &adiChannel() { return _adiIn; }

    /** Attach fault injection to the ADI readout path. */
    void
    attachAdiInjector(fault::FaultInjector *inj)
    {
        _adiIn.attachInjector(inj);
    }

    /**
     * Readout-path ADI latency for one transfer, including injected
     * jitter. Identical to `adi().inputLatency()` when no injector
     * is attached.
     */
    sim::Tick adiInputLatency() { return _adiIn.sampleLatency(0); }

    /** @name Data path 1: RoCC register transfers (1 cycle, 64-bit) */
    /// @{

    /**
     * q_update: write @p data to public QAddress @p qaddr. Returns the
     * completion tick. Regfile writes invalidate dependent program
     * entries so the next q_gen regenerates their pulses.
     */
    sim::Tick roccWrite(std::uint64_t qaddr, std::uint64_t data);

    /**
     * q_update.v: one RoCC transfer delivering @p values to regfile
     * QAddresses base, base + stride, ... Lanes whose value matches
     * the current regfile contents are skipped — they neither touch
     * the SRAM nor invalidate dependents, so the stale set equals
     * the scalar path's for the same effective update. Timing: one
     * dispatch cycle plus one cycle per two 32-bit elements on the
     * 64-bit operand path.
     */
    sim::Tick roccWriteVector(std::uint64_t base_qaddr,
                              std::uint32_t stride,
                              const std::vector<std::uint32_t> &values);

    /** Read a public QAddress over RoCC. */
    sim::Tick roccRead(std::uint64_t qaddr, std::uint64_t &data) const;

    /**
     * Non-blocking barrier query (single cycle): may the host read
     * [host_addr, host_addr + size)?
     */
    bool barrierQuery(std::uint64_t host_addr, std::uint64_t size);
    /// @}

    /** @name Data path 2: bulk DMA via the system bus */
    /// @{

    /**
     * q_set: install @p entries at the program chunk of @p qubit,
     * transferring from host memory at @p host_addr. The RBQ realigns
     * out-of-order bus responses and the WBQ staging drains into the
     * SRAM at one 32-bit word per SRAM cycle.
     */
    void dmaSetProgram(std::uint64_t host_addr, std::uint32_t qubit,
                       std::vector<ProgramEntry> entries,
                       DoneCallback done);

    /**
     * q_acquire: transfer @p num_entries of .measure starting at
     * @p first_entry to host memory at @p host_addr. Marks the host
     * range synced in the barrier as each PUT leaves on the bus.
     */
    void dmaAcquire(std::uint64_t host_addr, std::uint32_t first_entry,
                    std::uint32_t num_entries, DoneCallback done);
    /// @}

    /** @name Computation */
    /// @{

    /** q_gen over explicit work items. */
    void generate(std::vector<std::uint64_t> work,
                  std::function<void(const PipelineResult &,
                                     sim::Tick)> done);

    /** q_gen over every installed program entry. */
    void generateAll(std::function<void(const PipelineResult &,
                                        sim::Tick)> done);
    /// @}

    /** Functional helper: record one shot's readout in .measure. */
    void recordMeasurement(std::uint32_t entry, std::uint64_t bits);

    /** Register that regfile slot @p reg feeds program @p qaddr. */
    void linkRegfile(std::uint32_t reg, std::uint64_t program_qaddr);

    /** Clear the regfile->program dependency map. */
    void clearRegfileLinks();

    /** Invalidated-but-installed entries awaiting regeneration. */
    std::vector<std::uint64_t> staleProgramEntries() const;

    /** @name Statistics */
    /// @{
    sim::Scalar roccTransfers;
    sim::Scalar roccVectorElements;
    sim::Scalar setBytes;
    sim::Scalar acquireBytes;
    sim::Scalar generateRuns;
    sim::Scalar pulsesGenerated;
    sim::Scalar barrierQueries;
    /// @}

  private:
    /** Flush q_gen obs counters and emit per-stage trace spans. */
    void observeGenerate(const PipelineResult &result, sim::Tick fin);

    ControllerConfig _cfg;
    memory::TileLinkBus *_bus;
    sim::ClockDomain _sramClock;
    std::unique_ptr<QuantumControllerCache> _qcc;
    SkipLookupTable _slt;
    std::unique_ptr<PulsePipeline> _pipeline;
    MemoryBarrier _barrier;
    AdiModel _adi;
    AdiChannel _adiIn;
    ReorderBufferQueue<memory::BusResponse> _rbq;
    WriteBufferQueue _wbq;
    /** Analytic WBQ drain horizon (tick the staging empties). */
    sim::Tick _wbqDrainFree = 0;
    /** regfile slot -> dependent program entries. */
    std::unordered_map<std::uint32_t, std::vector<std::uint64_t>>
        _regfileLinks;
    /** Program entries invalidated by q_update since the last q_gen. */
    std::vector<std::uint64_t> _stale;
    /** Lazily allocated trace-sink process id (0 = none yet). */
    std::uint32_t _tracePid = 0;
};

} // namespace qtenon::controller

#endif // QTENON_CONTROLLER_CONTROLLER_HH
