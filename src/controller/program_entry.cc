#include "program_entry.hh"

#include <cmath>

#include "sim/logging.hh"

namespace qtenon::controller {

namespace {

constexpr double angleRange = 8.0 * M_PI; // [-4pi, 4pi)
constexpr std::uint32_t angleSteps = 1u << ProgramEntry::dataBits;

} // namespace

std::uint32_t
ProgramEntry::encodeAngle(double radians)
{
    // Wrap into [-4pi, 4pi).
    double w = std::fmod(radians + 4.0 * M_PI, angleRange);
    if (w < 0)
        w += angleRange;
    w -= 4.0 * M_PI;
    const double unit = (w + 4.0 * M_PI) / angleRange;
    auto code = static_cast<std::uint64_t>(unit * angleSteps);
    if (code >= angleSteps)
        code = angleSteps - 1;
    return static_cast<std::uint32_t>(code);
}

double
ProgramEntry::decodeAngle(std::uint32_t code)
{
    const double unit =
        (static_cast<double>(code) + 0.5) / angleSteps;
    return unit * angleRange - 4.0 * M_PI;
}

std::uint8_t
ProgramEntry::encodeType(quantum::GateType t)
{
    return static_cast<std::uint8_t>(t) & 0xF;
}

quantum::GateType
ProgramEntry::decodeType(std::uint8_t code)
{
    if (code > static_cast<std::uint8_t>(quantum::GateType::Measure))
        sim::panic("bad gate type code ", int(code));
    return static_cast<quantum::GateType>(code);
}

} // namespace qtenon::controller
