/**
 * @file
 * The public facade of the Qtenon reproduction: builds the complete
 * tightly-coupled system (DRAM, L2, TileLink bus, quantum controller,
 * host runtime) from one configuration struct and executes VQA
 * traces against it.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   core::QtenonConfig cfg;
 *   cfg.numQubits = 8;
 *   core::QtenonSystem sys(cfg);
 *   auto workload = vqa::Workload::build({...});
 *   auto result = sys.runVqa(workload, {...});
 */

#ifndef QTENON_CORE_QTENON_SYSTEM_HH
#define QTENON_CORE_QTENON_SYSTEM_HH

#include <memory>

#include "controller/controller.hh"
#include "fault/fault.hh"
#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/tilelink.hh"
#include "runtime/executor.hh"
#include "vqa/driver.hh"

namespace qtenon::core {

/** Full-system configuration (defaults reproduce Tables 2 and 4). */
struct QtenonConfig {
    std::uint32_t numQubits = 64;
    /** Per-qubit .program chunk capacity in entries; 0 keeps the
     *  paper's 1024 (Table 2). Routed images that funnel traffic
     *  through few qubits (multi-chip shard boundaries) need more. */
    std::uint32_t programEntriesPerQubit = 0;
    runtime::HostCoreModel host = runtime::HostCoreModel::rocket();
    runtime::SoftwareConfig software = runtime::SoftwareConfig::full();
    controller::SltConfig slt;
    controller::PipelineConfig pipeline;
    controller::AdiConfig adi;
    memory::CacheConfig l2 = {512 * 1024, 4, 64, 8, 2, 1};
    memory::DramConfig dram;
    memory::TileLinkConfig bus;
    quantum::GateTiming gateTiming;
    std::uint64_t coreFreqHz = 1'000'000'000ull;
    /** Ablation: force K shots per measurement PUT (0 = policy). */
    std::uint64_t batchIntervalOverride = 0;
    /** Optional fault injection (not owned): attaches to the bus
     *  (site "bus") and the ADI readout channel (site "adi"). */
    fault::FaultInjector *injector = nullptr;
    /** Tag-retry policy for injected bus response errors (ticks). */
    fault::RetryPolicy busRetry{.maxAttempts = 3,
                                .backoff = 10 * sim::nsTicks};
};

/** Result of one end-to-end VQA run on Qtenon. */
struct VqaRunResult {
    runtime::ExecutionResult timing;
    runtime::VqaTrace trace;
    sim::Tick shotDuration = 0;
    double finalCost = 0.0;
};

/** The assembled system. */
class QtenonSystem
{
  public:
    explicit QtenonSystem(QtenonConfig cfg = QtenonConfig{});
    ~QtenonSystem();

    const QtenonConfig &config() const { return _cfg; }
    sim::EventQueue &eventQueue() { return _eq; }
    controller::QuantumController &controller() { return *_controller; }
    memory::TileLinkBus &bus() { return *_bus; }
    memory::Cache &l2() { return *_l2; }
    memory::Dram &dram() { return *_dram; }
    runtime::QtenonExecutor &executor() { return *_executor; }

    /** One shot's wall time for @p c under the configured timing. */
    sim::Tick shotDuration(const quantum::QuantumCircuit &c) const;

    /** Dump every component's statistics, gem5-style. */
    void dumpStats(std::ostream &os) const;

    /** Replay a prepared trace (timing only). */
    runtime::ExecutionResult execute(const runtime::VqaTrace &trace,
                                     const quantum::QuantumCircuit &c);

    /**
     * End-to-end convenience: run the functional optimization and
     * replay the resulting trace on this system.
     */
    VqaRunResult runVqa(vqa::Workload &w,
                        vqa::DriverConfig driver_cfg = {});

  private:
    QtenonConfig _cfg;
    sim::EventQueue _eq;
    std::unique_ptr<memory::Dram> _dram;
    std::unique_ptr<memory::Cache> _l2;
    std::unique_ptr<memory::TileLinkBus> _bus;
    std::unique_ptr<controller::QuantumController> _controller;
    std::unique_ptr<runtime::QtenonExecutor> _executor;
};

} // namespace qtenon::core

#endif // QTENON_CORE_QTENON_SYSTEM_HH
