#include "qtenon_system.hh"

namespace qtenon::core {

QtenonSystem::QtenonSystem(QtenonConfig cfg) : _cfg(cfg)
{
    const auto core_clock = sim::ClockDomain::fromHz(_cfg.coreFreqHz);

    _dram = std::make_unique<memory::Dram>(_eq, "dram", _cfg.dram);
    _l2 = std::make_unique<memory::Cache>(_eq, "l2", core_clock,
                                          _cfg.l2, _dram.get());
    _bus = std::make_unique<memory::TileLinkBus>(
        _eq, "bus", core_clock, _cfg.bus, _l2.get());
    if (_cfg.injector)
        _bus->attachInjector(_cfg.injector, _cfg.busRetry);

    controller::ControllerConfig ctrl_cfg;
    ctrl_cfg.layout.numQubits = _cfg.numQubits;
    if (_cfg.programEntriesPerQubit)
        ctrl_cfg.layout.programEntriesPerQubit =
            _cfg.programEntriesPerQubit;
    ctrl_cfg.slt = _cfg.slt;
    ctrl_cfg.pipeline = _cfg.pipeline;
    ctrl_cfg.adi = _cfg.adi;
    ctrl_cfg.coreFreqHz = _cfg.coreFreqHz;
    _controller = std::make_unique<controller::QuantumController>(
        _eq, "qc", ctrl_cfg, _bus.get());
    if (_cfg.injector)
        _controller->attachAdiInjector(_cfg.injector);

    runtime::ExecutorConfig exec_cfg;
    exec_cfg.software = _cfg.software;
    exec_cfg.host = _cfg.host;
    exec_cfg.gateTiming = _cfg.gateTiming;
    exec_cfg.batchIntervalOverride = _cfg.batchIntervalOverride;
    // The executor's compiler must lower the way the driver did, so
    // its cost/wave accounting matches the images it is handed.
    isa::PipelineConfig pipe;
    pipe.vectorIsa = _cfg.software.vectorIsa;
    _executor = std::make_unique<runtime::QtenonExecutor>(
        _eq, *_controller,
        isa::QtenonCompiler{isa::CompilerCostModel{}, pipe}, exec_cfg);
}

QtenonSystem::~QtenonSystem() = default;

void
QtenonSystem::dumpStats(std::ostream &os) const
{
    _dram->stats().dump(os);
    _l2->stats().dump(os);
    _bus->stats().dump(os);
    _controller->stats().dump(os);
    _controller->qcc().stats().dump(os);

    // SLT counters live outside the StatGroup machinery.
    const auto &slt = _controller->slt();
    os << "qc.slt.hits " << slt.hits << " # SLT hits\n";
    os << "qc.slt.misses " << slt.misses << " # SLT misses\n";
    os << "qc.slt.qspace_hits " << slt.qspaceHits
       << " # QSpace hits after SLT miss\n";
    os << "qc.slt.evictions " << slt.evictions
       << " # least-count evictions\n";
}

sim::Tick
QtenonSystem::shotDuration(const quantum::QuantumCircuit &c) const
{
    quantum::QuantumTimingModel timing(_cfg.gateTiming);
    return timing.schedule(c).duration;
}

runtime::ExecutionResult
QtenonSystem::execute(const runtime::VqaTrace &trace,
                      const quantum::QuantumCircuit &c)
{
    return _executor->execute(trace, shotDuration(c));
}

VqaRunResult
QtenonSystem::runVqa(vqa::Workload &w, vqa::DriverConfig driver_cfg)
{
    VqaRunResult res;
    vqa::VqaDriver driver(driver_cfg);
    res.trace = driver.run(w);
    res.shotDuration = shotDuration(w.circuit);
    res.timing = _executor->execute(res.trace, res.shotDuration);
    res.finalCost = res.trace.costHistory.empty()
        ? 0.0 : res.trace.costHistory.back();
    return res;
}

} // namespace qtenon::core
