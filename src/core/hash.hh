/**
 * @file
 * The repository's one FNV-1a implementation, shared by everything
 * that needs a stable content digest: the ResultsStore determinism
 * digest, the fault injector's site-name stream derivation, and the
 * daemon's content-addressed result-cache keys.
 *
 * Header-only and dependency-free on purpose: any layer may include
 * it without linking qtenon_core, so the base libraries (sim, fault)
 * can reuse the exact same constants instead of growing private
 * copies.
 *
 * Two digest widths:
 *
 *   - `Fnv1a` / `fnv1a()`: the classic 64-bit stream (offset basis
 *     0xcbf29ce484222325, prime 0x100000001b3). Byte-compatible with
 *     the historical ResultsStore digest and fault::hashName.
 *   - `Digest128` / `fnv1a128()`: two independent 64-bit streams
 *     (the second runs over the same bytes from a different offset
 *     basis), for keys where 64-bit birthday collisions would be a
 *     correctness hazard rather than a statistics artifact — e.g.
 *     the daemon result cache, which must never serve the wrong
 *     payload.
 */

#ifndef QTENON_CORE_HASH_HH
#define QTENON_CORE_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace qtenon::core {

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    static constexpr std::uint64_t offsetBasis =
        0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    explicit Fnv1a(std::uint64_t basis = offsetBasis) : _h(basis) {}

    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            _h ^= p[i];
            _h *= prime;
        }
    }

    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Hash the 8 little-endian bytes of @p v. */
    void
    update(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= static_cast<unsigned char>(v >> (8 * i));
            _h *= prime;
        }
    }

    std::uint64_t digest() const { return _h; }

  private:
    std::uint64_t _h;
};

/** One-shot 64-bit FNV-1a of a byte string. */
inline std::uint64_t
fnv1a(const std::string &s)
{
    Fnv1a h;
    h.update(s);
    return h.digest();
}

/** A 128-bit content digest (two independent FNV-1a streams). */
struct Digest128 {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    friend bool
    operator==(const Digest128 &a, const Digest128 &b)
    {
        return a.lo == b.lo && a.hi == b.hi;
    }

    friend bool
    operator!=(const Digest128 &a, const Digest128 &b)
    {
        return !(a == b);
    }

    friend bool
    operator<(const Digest128 &a, const Digest128 &b)
    {
        return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
    }

    /** 32 lowercase hex digits (hi then lo), e.g. a cache-key id. */
    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(32, '0');
        for (int i = 0; i < 16; ++i) {
            out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
            out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
        }
        return out;
    }
};

/** One-shot 128-bit digest of a byte string. */
inline Digest128
fnv1a128(const std::string &s)
{
    Fnv1a lo;
    /** A second stream from a decorrelated basis (the golden-ratio
     *  constant splitmix64 also uses). */
    Fnv1a hi(Fnv1a::offsetBasis ^ 0x9e3779b97f4a7c15ull);
    lo.update(s);
    hi.update(s);
    return Digest128{lo.digest(), hi.digest()};
}

} // namespace qtenon::core

#endif // QTENON_CORE_HASH_HH
