/**
 * @file
 * Experiment helpers shared by the bench binaries: run one workload
 * on both systems from a single functional trace and report the
 * paper's headline metrics (classical and end-to-end speedup,
 * per-category breakdowns).
 */

#ifndef QTENON_CORE_EXPERIMENT_HH
#define QTENON_CORE_EXPERIMENT_HH

#include <string>

#include "baseline/decoupled_system.hh"
#include "qtenon_system.hh"

namespace qtenon::core {

/** Inputs of one comparison point. */
struct ComparisonConfig {
    vqa::WorkloadConfig workload;
    vqa::DriverConfig driver;
    QtenonConfig qtenon;
    baseline::DecoupledConfig baselineCfg;
};

/** Both systems' results over the same functional trace. */
struct Comparison {
    std::string name;
    runtime::TimeBreakdown qtenon;
    runtime::TimeBreakdown baseline;
    runtime::VqaTrace trace;
    sim::Tick shotDuration = 0;

    double
    endToEndSpeedup() const
    {
        return qtenon.wall
            ? static_cast<double>(baseline.wall) /
                static_cast<double>(qtenon.wall)
            : 0.0;
    }

    double
    classicalSpeedup() const
    {
        const auto q = qtenon.classical();
        return q ? static_cast<double>(baseline.classical()) /
                static_cast<double>(q)
                 : 0.0;
    }
};

/**
 * Run the workload functionally once, then replay the trace on a
 * fresh Qtenon system and on the decoupled baseline.
 */
Comparison compareSystems(const ComparisonConfig &cfg);

/** Format ticks with an adaptive unit (ns/us/ms/s). */
std::string formatTime(sim::Tick t);

} // namespace qtenon::core

#endif // QTENON_CORE_EXPERIMENT_HH
