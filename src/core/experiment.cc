#include "experiment.hh"

#include <cstdio>

namespace qtenon::core {

Comparison
compareSystems(const ComparisonConfig &cfg)
{
    Comparison cmp;

    auto workload = vqa::Workload::build(cfg.workload);
    cmp.name = workload.name;

    vqa::VqaDriver driver(cfg.driver);
    cmp.trace = driver.run(workload);

    // Qtenon: event-driven replay on a fresh system.
    auto qcfg = cfg.qtenon;
    qcfg.numQubits = cfg.workload.numQubits;
    QtenonSystem sys(qcfg);
    cmp.shotDuration = sys.shotDuration(workload.circuit);
    const auto exec = sys.execute(cmp.trace, workload.circuit);
    cmp.qtenon = exec.total();

    // Baseline: analytic replay of the same trace.
    baseline::DecoupledSystem base(cfg.baselineCfg);
    cmp.baseline = base.execute(workload.circuit, cmp.trace);

    return cmp;
}

std::string
formatTime(sim::Tick t)
{
    char buf[64];
    const double ns = sim::ticksToNs(t);
    if (ns < 1e3)
        std::snprintf(buf, sizeof(buf), "%.1f ns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
    return buf;
}

} // namespace qtenon::core
