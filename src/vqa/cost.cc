#include "cost.hh"

#include "quantum/backend.hh"

#include "sim/logging.hh"

namespace qtenon::vqa {

double
CostFunction::exactFromCircuit(const quantum::QuantumCircuit &c) const
{
    quantum::BackendConfig cfg;
    cfg.kind = quantum::BackendKind::Statevector;
    auto b = quantum::makeBackend(c.numQubits(), cfg);
    b->run(c);
    return fromBackend(*b);
}

double
MaxCutCost::fromShots(const std::vector<std::uint64_t> &shots) const
{
    if (shots.empty())
        return 0.0;
    double sum = 0.0;
    for (auto s : shots)
        sum += static_cast<double>(_graph.cutValue(s));
    return -sum / static_cast<double>(shots.size());
}

double
MaxCutCost::fromMarginals(const std::vector<double> &p1) const
{
    double expected = 0.0;
    for (const auto &e : _graph.edges()) {
        const double pu = p1[e.u];
        const double pv = p1[e.v];
        expected += pu * (1.0 - pv) + pv * (1.0 - pu);
    }
    return -expected;
}

double
MaxCutCost::fromBackend(quantum::Backend &b) const
{
    double expected = 0.0;
    for (const auto &e : _graph.edges())
        expected += (1.0 - b.expectationZZ(e.u, e.v)) / 2.0;
    return -expected;
}

double
MaxCutCost::opsPerShot() const
{
    // Bit-sliced evaluation: edges are tested with XOR + popcount
    // over packed words, amortizing to less than two ops per edge.
    return 1.5 * static_cast<double>(_graph.numEdges()) + 8.0;
}

double
HamiltonianCost::fromShots(
    const std::vector<std::uint64_t> &shots) const
{
    return _hamiltonian.diagonalExpectationFromShots(shots);
}

double
HamiltonianCost::fromMarginals(const std::vector<double> &p1) const
{
    using quantum::Pauli;
    double e = _hamiltonian.identityOffset();
    for (const auto &t : _hamiltonian.terms()) {
        if (!t.string.isDiagonal())
            continue;
        // Mean-field: <prod Z> ~= prod <Z>.
        double prod = 1.0;
        for (const auto &f : t.string.factors) {
            if (f.op == Pauli::Z)
                prod *= 1.0 - 2.0 * p1[f.qubit];
        }
        e += t.coefficient * prod;
    }
    return e;
}

double
HamiltonianCost::fromBackend(quantum::Backend &b) const
{
    return b.expectation(_hamiltonian);
}

double
HamiltonianCost::opsPerShot() const
{
    // Diagonal terms evaluate via XOR-parity + popcount on packed
    // shot words: under one op per factor per shot amortized.
    double ops = 8.0;
    for (const auto &t : _hamiltonian.terms()) {
        if (t.string.isDiagonal())
            ops += 0.75 * static_cast<double>(t.string.factors.size());
    }
    return ops;
}

double
QnnLoss::fromShots(const std::vector<std::uint64_t> &shots) const
{
    if (shots.empty())
        return 0.0;
    double ones = 0.0;
    for (auto s : shots)
        ones += (s & 1) ? 1.0 : 0.0;
    const double p1 = ones / static_cast<double>(shots.size());
    const double d = p1 - _target;
    return d * d;
}

double
QnnLoss::fromMarginals(const std::vector<double> &p1) const
{
    if (p1.empty())
        sim::panic("QNN loss needs at least one marginal");
    const double d = p1[0] - _target;
    return d * d;
}

double
QnnLoss::fromBackend(quantum::Backend &b) const
{
    const double d = b.marginalOne(0) - _target;
    return d * d;
}

double
QnnLoss::opsPerShot() const
{
    // The loss itself is cheap per shot, but training evaluates the
    // prediction against every dataset sample (forward bookkeeping,
    // gradients of the loss head), multiplying the per-shot work.
    return 2.0 * static_cast<double>(_datasetSize) +
        0.5 * static_cast<double>(_numQubits);
}

} // namespace qtenon::vqa
