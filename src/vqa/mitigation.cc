#include "mitigation.hh"

#include "quantum/circuit.hh"
#include "sim/logging.hh"

namespace qtenon::vqa {

std::vector<ConfusionMatrix>
ReadoutMitigator::calibrate(quantum::MeasurementSampler &sampler,
                            std::uint32_t num_qubits,
                            std::size_t shots, sim::Rng &rng)
{
    if (num_qubits > 64)
        sim::fatal("calibration capped at 64 qubits (shot words)");

    // Prepare |0...0>: every observed 1 is a 0->1 misread.
    quantum::QuantumCircuit zeros(num_qubits);
    auto zero_shots = sampler.sample(zeros, shots, rng);

    // Prepare |1...1>: every observed 0 is a 1->0 misread.
    quantum::QuantumCircuit ones(num_qubits);
    for (std::uint32_t q = 0; q < num_qubits; ++q)
        ones.x(q);
    auto one_shots = sampler.sample(ones, shots, rng);

    std::vector<ConfusionMatrix> out(num_qubits);
    for (std::uint32_t q = 0; q < num_qubits; ++q) {
        const std::uint64_t bit = std::uint64_t(1) << q;
        double mis0 = 0.0;
        for (auto s : zero_shots)
            mis0 += (s & bit) ? 1.0 : 0.0;
        double mis1 = 0.0;
        for (auto s : one_shots)
            mis1 += (s & bit) ? 0.0 : 1.0;
        out[q].p01 = mis0 / static_cast<double>(shots);
        out[q].p10 = mis1 / static_cast<double>(shots);
    }
    return out;
}

std::vector<double>
ReadoutMitigator::correctedMarginals(
    const std::vector<std::uint64_t> &shots) const
{
    std::vector<double> p1(_confusion.size(), 0.0);
    if (shots.empty())
        return p1;
    for (auto s : shots) {
        for (std::size_t q = 0; q < _confusion.size(); ++q) {
            if (s & (std::uint64_t(1) << q))
                p1[q] += 1.0;
        }
    }
    for (std::size_t q = 0; q < _confusion.size(); ++q) {
        p1[q] /= static_cast<double>(shots.size());
        p1[q] = _confusion[q].correct(p1[q]);
    }
    return p1;
}

double
ReadoutMitigator::correctedExpectationZ(
    const std::vector<std::uint64_t> &shots, std::uint32_t q) const
{
    if (q >= _confusion.size())
        sim::panic("qubit ", q, " outside calibration");
    double ones = 0.0;
    for (auto s : shots)
        ones += (s & (std::uint64_t(1) << q)) ? 1.0 : 0.0;
    const double measured =
        shots.empty() ? 0.0 : ones / static_cast<double>(shots.size());
    return 1.0 - 2.0 * _confusion[q].correct(measured);
}

} // namespace qtenon::vqa
