/**
 * @file
 * Readout-error mitigation by confusion-matrix inversion.
 *
 * With independent per-qubit assignment errors, the measured
 * excitation probability relates to the true one through a 2x2
 * confusion matrix; calibrating that matrix (by preparing |0> and
 * |1> and counting misreads) lets the host unfold marginals and
 * expectation values classically - post-processing that Qtenon's
 * tight coupling makes cheap enough to run inside the optimization
 * loop (cf. the measurement-error-mitigation line of work the paper
 * cites, e.g. VarSaw).
 */

#ifndef QTENON_VQA_MITIGATION_HH
#define QTENON_VQA_MITIGATION_HH

#include <cstdint>
#include <vector>

#include "quantum/sampler.hh"
#include "sim/random.hh"

namespace qtenon::vqa {

/** Per-qubit 2x2 confusion model: P(read r | true t). */
struct ConfusionMatrix {
    /** P(read 1 | true 0). */
    double p01 = 0.0;
    /** P(read 0 | true 1). */
    double p10 = 0.0;

    /** Unfold a measured P(read 1) into the true P(1). */
    double
    correct(double measured_p1) const
    {
        // measured = true*(1-p10) + (1-true)*p01
        const double denom = 1.0 - p01 - p10;
        if (denom <= 1e-9)
            return measured_p1; // non-invertible; give up gracefully
        double t = (measured_p1 - p01) / denom;
        return std::min(1.0, std::max(0.0, t));
    }

    /** Unfold a measured <Z> likewise. */
    double
    correctZ(double measured_z) const
    {
        return 1.0 - 2.0 * correct((1.0 - measured_z) / 2.0);
    }
};

/** Calibration + correction driver. */
class ReadoutMitigator
{
  public:
    /**
     * Calibrate per-qubit confusion matrices by sampling the
     * prepared |0...0> and |1...1> states through @p sampler.
     */
    static std::vector<ConfusionMatrix> calibrate(
        quantum::MeasurementSampler &sampler, std::uint32_t num_qubits,
        std::size_t shots, sim::Rng &rng);

    explicit ReadoutMitigator(std::vector<ConfusionMatrix> confusion)
        : _confusion(std::move(confusion))
    {}

    const std::vector<ConfusionMatrix> &confusion() const
    {
        return _confusion;
    }

    /** Corrected per-qubit P(1) estimates from raw shot words. */
    std::vector<double> correctedMarginals(
        const std::vector<std::uint64_t> &shots) const;

    /** Corrected <Z_q> from raw shot words. */
    double correctedExpectationZ(
        const std::vector<std::uint64_t> &shots,
        std::uint32_t q) const;

  private:
    std::vector<ConfusionMatrix> _confusion;
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_MITIGATION_HH
