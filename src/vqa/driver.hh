/**
 * @file
 * The VQA driver: runs the functional optimization loop once and
 * records a runtime::VqaTrace both timing models replay. This is the
 * highest-level entry point beneath the core/ facade.
 */

#ifndef QTENON_VQA_DRIVER_HH
#define QTENON_VQA_DRIVER_HH

#include <cstdint>

#include "optimizer.hh"
#include "quantum/backend.hh"
#include "runtime/trace.hh"
#include "workload.hh"

namespace qtenon::vqa {

/** Driver parameters (paper defaults: 500 shots, 10 iterations). */
struct DriverConfig {
    std::uint64_t shots = 500;
    std::uint32_t iterations = 10;
    OptimizerKind optimizer = OptimizerKind::GradientDescent;
    std::uint64_t seed = 7;
    /** Statevector cap; beyond it the mean-field engine is used. */
    std::uint32_t exactCap = 20;
    /** Functional engine; Auto applies the exactCap policy. */
    quantum::BackendKind backend = quantum::BackendKind::Auto;
    /** Statevector kernel tuning (gate fusion, worker threads). */
    quantum::KernelConfig kernel;
    /** Store per-shot readout words in the trace (n <= 64 only). */
    bool recordShotData = true;
    /**
     * Evaluate the cost exactly from the statevector (all bases,
     * including non-diagonal Hamiltonian terms) instead of from the
     * sampled diagonal readout. Requires n <= exactCap. Shots are
     * still drawn for the timing trace.
     */
    bool useExactCost = false;
    /** Per-qubit readout bit-flip probability (0 = ideal). */
    double readoutError = 0.0;
};

/** Runs workloads functionally and produces timing traces. */
class VqaDriver
{
  public:
    explicit VqaDriver(DriverConfig cfg = DriverConfig{}) : _cfg(cfg) {}

    const DriverConfig &config() const { return _cfg; }

    /**
     * Optimize @p w for the configured iterations, recording one
     * RoundRecord per cost evaluation. The workload's circuit
     * parameters are updated in place.
     */
    runtime::VqaTrace run(Workload &w);

  private:
    DriverConfig _cfg;
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_DRIVER_HH
