/**
 * @file
 * The VQA driver: runs the functional optimization loop once and
 * records a runtime::VqaTrace both timing models replay. This is the
 * highest-level entry point beneath the core/ facade.
 */

#ifndef QTENON_VQA_DRIVER_HH
#define QTENON_VQA_DRIVER_HH

#include <cstdint>

#include "fault/fault.hh"
#include "isa/pass/compile_cache.hh"
#include "optimizer.hh"
#include "quantum/backend.hh"
#include "runtime/trace.hh"
#include "workload.hh"

namespace qtenon::vqa {

/** Driver parameters (paper defaults: 500 shots, 10 iterations). */
struct DriverConfig {
    std::uint64_t shots = 500;
    std::uint32_t iterations = 10;
    OptimizerKind optimizer = OptimizerKind::GradientDescent;
    std::uint64_t seed = 7;
    /** Statevector cap; beyond it the mean-field engine is used. */
    std::uint32_t exactCap = 20;
    /** Functional engine; Auto applies the exactCap policy. */
    quantum::BackendKind backend = quantum::BackendKind::Auto;
    /** Statevector kernel tuning (gate fusion, worker threads). */
    quantum::KernelConfig kernel;
    /** Store per-shot readout words in the trace (n <= 64 only). */
    bool recordShotData = true;
    /**
     * Evaluate the cost exactly from the statevector (all bases,
     * including non-diagonal Hamiltonian terms) instead of from the
     * sampled diagonal readout. Requires n <= exactCap. Shots are
     * still drawn for the timing trace.
     */
    bool useExactCost = false;
    /** Per-qubit readout bit-flip probability (0 = ideal). */
    double readoutError = 0.0;
    /**
     * Optional fault injection (not owned). Site "eval" makes whole
     * cost evaluations fail (drop) or come back detectably corrupted
     * (corrupt); each failed attempt still costs a full round in the
     * timing trace (the shots ran, the result was lost) and is
     * re-queued under `evalRetry`. A job that exhausts the budget
     * discards the evaluation and falls back to the last good cost,
     * which is gradient-safe for both GD (zero contribution) and
     * SPSA (bounded symmetric difference). Site "readout" adds
     * measurement bit flips (see EvaluatorConfig::injector).
     */
    fault::FaultInjector *injector = nullptr;
    /** Evaluation re-queue budget when faults are injected. */
    fault::RetryPolicy evalRetry{.maxAttempts = 3};
    /**
     * Optional content-addressed compile cache (not owned). When set
     * (or when a process-global cache is installed — see
     * isa/pass/compile_cache.hh), the trace's program image is
     * served from the cache on a structural hit; images are byte-
     * identical either way, so this is excluded from canonicalText
     * like the injector.
     */
    isa::CompileCache *compileCache = nullptr;
    /**
     * Compile the trace image with the vector-packing pass
     * (`--isa-vector`): the image carries q_update.v / q_gen.v wave
     * annotations the runtime's vector dispatch needs. Off keeps the
     * byte-stable scalar image and the historical cache keys.
     */
    bool isaVector = false;
};

/**
 * Canonical textual form of every DriverConfig field that can alter
 * a job's functional or recorded outcome: shots, iterations,
 * optimizer, seed, exact cap, backend kind, kernel knobs (fusion and
 * SIMD mode are included even though they are bit-identical by
 * contract — the cache key is deliberately conservative), exact-cost
 * mode, readout error (raw IEEE-754 bits), and shot-data recording.
 * The fault injector pointer is excluded; the owning JobSpec's
 * FaultSpec canonicalizes separately. Used by the daemon's
 * content-addressed result-cache key.
 */
std::string canonicalText(const DriverConfig &cfg);

/** Runs workloads functionally and produces timing traces. */
class VqaDriver
{
  public:
    explicit VqaDriver(DriverConfig cfg = DriverConfig{}) : _cfg(cfg) {}

    const DriverConfig &config() const { return _cfg; }

    /**
     * Optimize @p w for the configured iterations, recording one
     * RoundRecord per cost evaluation. The workload's circuit
     * parameters are updated in place.
     */
    runtime::VqaTrace run(Workload &w);

  private:
    DriverConfig _cfg;
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_DRIVER_HH
