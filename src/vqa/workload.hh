/**
 * @file
 * Benchmark workload construction: the three VQAs at a given qubit
 * count, with the paper's default shapes (QAOA: 5-layer MAX-CUT on a
 * 3-regular graph; VQE: hardware-efficient ansatz over the molecular
 * spin-orbitals; QNN: 2 layers of Ry+CZ).
 */

#ifndef QTENON_VQA_WORKLOAD_HH
#define QTENON_VQA_WORKLOAD_HH

#include <memory>
#include <string>

#include "cost.hh"
#include "quantum/circuit.hh"

namespace qtenon::vqa {

/** The three benchmark algorithms. */
enum class Algorithm {
    Qaoa,
    Vqe,
    Qnn,
};

std::string algorithmName(Algorithm a);

/** Workload shape parameters. */
struct WorkloadConfig {
    Algorithm algorithm = Algorithm::Qaoa;
    std::uint32_t numQubits = 8;
    std::uint32_t qaoaLayers = 5;
    std::uint32_t vqeLayers = 3;
    std::uint32_t qnnLayers = 2;
};

/** A ready-to-run workload: circuit + cost function. */
struct Workload {
    std::string name;
    quantum::QuantumCircuit circuit{1};
    std::unique_ptr<CostFunction> cost;

    /** Build the paper's benchmark workload for @p cfg. */
    static Workload build(const WorkloadConfig &cfg);
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_WORKLOAD_HH
