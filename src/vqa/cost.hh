/**
 * @file
 * Cost functions for the three benchmark VQAs. Each cost can be
 * evaluated from sampled readout words (n <= 64) or from per-qubit
 * marginals (the large-n path used by the scalability sweeps), and
 * reports how many host operations one shot of post-processing
 * costs, which feeds the host-time models.
 */

#ifndef QTENON_VQA_COST_HH
#define QTENON_VQA_COST_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "quantum/circuit.hh"
#include "quantum/graph.hh"
#include "quantum/pauli.hh"

namespace qtenon::quantum {
class Backend;
}

namespace qtenon::vqa {

/** A minimized scalar objective over measurement statistics. */
class CostFunction
{
  public:
    virtual ~CostFunction() = default;

    /** Cost from full readout words (bit q = qubit q). */
    virtual double fromShots(
        const std::vector<std::uint64_t> &shots) const = 0;

    /** Cost from per-qubit P(read 1) marginals. */
    virtual double fromMarginals(
        const std::vector<double> &p1) const = 0;

    /**
     * Cost from the expectation values of a prepared backend (run()
     * already called). Exact on the exact engines — every required
     * basis, including non-diagonal Hamiltonian terms — and the
     * product-state estimate on the mean-field engine.
     */
    virtual double fromBackend(quantum::Backend &b) const = 0;

    /**
     * Exact (noise-free) cost of the circuit's output state via a
     * one-shot dense statevector; only valid within the statevector
     * qubit cap. Convenience over fromBackend for callers without a
     * prepared backend.
     */
    double exactFromCircuit(const quantum::QuantumCircuit &c) const;

    /** Host operations per shot of classical post-processing. */
    virtual double opsPerShot() const = 0;
};

/** Negated MAX-CUT value (minimization form) for QAOA. */
class MaxCutCost : public CostFunction
{
  public:
    explicit MaxCutCost(const quantum::Graph &g) : _graph(g) {}

    double fromShots(
        const std::vector<std::uint64_t> &shots) const override;
    double fromMarginals(const std::vector<double> &p1) const override;
    double fromBackend(quantum::Backend &b) const override;
    double opsPerShot() const override;

    const quantum::Graph &graph() const { return _graph; }

  private:
    quantum::Graph _graph;
};

/** Hamiltonian energy estimate for VQE. */
class HamiltonianCost : public CostFunction
{
  public:
    explicit HamiltonianCost(quantum::Hamiltonian h)
        : _hamiltonian(std::move(h))
    {}

    double fromShots(
        const std::vector<std::uint64_t> &shots) const override;
    double fromMarginals(const std::vector<double> &p1) const override;
    double fromBackend(quantum::Backend &b) const override;
    double opsPerShot() const override;

    const quantum::Hamiltonian &hamiltonian() const
    {
        return _hamiltonian;
    }

  private:
    quantum::Hamiltonian _hamiltonian;
};

/**
 * QNN training loss: squared error between the readout qubit's
 * excitation probability and a target, summed over a (modelled)
 * dataset. The dataset multiplies host post-processing work, which
 * is what makes QNN the host-heaviest workload in the paper.
 */
class QnnLoss : public CostFunction
{
  public:
    QnnLoss(std::uint32_t num_qubits, double target = 0.25,
            std::uint32_t dataset_size = 64)
        : _numQubits(num_qubits), _target(target),
          _datasetSize(dataset_size)
    {}

    double fromShots(
        const std::vector<std::uint64_t> &shots) const override;
    double fromMarginals(const std::vector<double> &p1) const override;
    double fromBackend(quantum::Backend &b) const override;
    double opsPerShot() const override;

  private:
    std::uint32_t _numQubits;
    double _target;
    std::uint32_t _datasetSize;
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_COST_HH
