#include "workload.hh"

#include <cmath>

#include "quantum/ansatz.hh"
#include "quantum/graph.hh"
#include "quantum/molecule.hh"
#include "sim/logging.hh"

namespace qtenon::vqa {

std::string
algorithmName(Algorithm a)
{
    switch (a) {
      case Algorithm::Qaoa: return "QAOA";
      case Algorithm::Vqe: return "VQE";
      case Algorithm::Qnn: return "QNN";
    }
    sim::panic("unknown algorithm");
}

Workload
Workload::build(const WorkloadConfig &cfg)
{
    Workload w;
    const auto n = cfg.numQubits;

    switch (cfg.algorithm) {
      case Algorithm::Qaoa: {
        auto graph = quantum::Graph::threeRegular(n);
        w.circuit =
            quantum::ansatz::qaoaMaxCut(graph, cfg.qaoaLayers);
        w.cost = std::make_unique<MaxCutCost>(graph);
        break;
      }
      case Algorithm::Vqe: {
        w.circuit =
            quantum::ansatz::hardwareEfficient(n, cfg.vqeLayers);
        auto h = (n == 2) ? quantum::h2()
                          : quantum::syntheticMolecule(n);
        w.cost = std::make_unique<HamiltonianCost>(std::move(h));
        break;
      }
      case Algorithm::Qnn: {
        // Deterministic pseudo-features standing in for one encoded
        // training sample.
        std::vector<double> features(n);
        for (std::uint32_t q = 0; q < n; ++q)
            features[q] = 0.3 + 0.5 * std::sin(0.9 * (q + 1));
        w.circuit =
            quantum::ansatz::qnn(n, features, cfg.qnnLayers);
        w.cost = std::make_unique<QnnLoss>(n);
        break;
      }
    }
    w.name = algorithmName(cfg.algorithm) + "-" + std::to_string(n);
    return w;
}

} // namespace qtenon::vqa
