#include "optimizer.hh"

#include <cmath>

namespace qtenon::vqa {

double
GradientDescent::iterate(std::vector<double> &params,
                         const EvalOracle &oracle)
{
    const double shift = M_PI / 2.0;
    std::vector<double> grad(params.size(), 0.0);

    for (std::size_t p = 0; p < params.size(); ++p) {
        auto probe = params;
        probe[p] = params[p] + shift;
        const double plus = oracle(probe);
        probe[p] = params[p] - shift;
        const double minus = oracle(probe);
        grad[p] = (plus - minus) / 2.0;
    }

    for (std::size_t p = 0; p < params.size(); ++p)
        params[p] -= _lr * grad[p];

    return oracle(params);
}

double
Spsa::iterate(std::vector<double> &params, const EvalOracle &oracle)
{
    ++_k;
    // Standard decaying gain sequences.
    const double ak = _a / std::pow(static_cast<double>(_k), 0.602);
    const double ck = _c / std::pow(static_cast<double>(_k), 0.101);

    std::vector<double> delta(params.size());
    for (auto &d : delta)
        d = _rng.rademacher();

    auto plus = params;
    auto minus = params;
    for (std::size_t p = 0; p < params.size(); ++p) {
        plus[p] += ck * delta[p];
        minus[p] -= ck * delta[p];
    }
    const double c_plus = oracle(plus);
    const double c_minus = oracle(minus);

    const double diff = (c_plus - c_minus) / (2.0 * ck);
    for (std::size_t p = 0; p < params.size(); ++p)
        params[p] -= ak * diff / delta[p];

    return (c_plus + c_minus) / 2.0;
}

} // namespace qtenon::vqa
