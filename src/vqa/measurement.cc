#include "measurement.hh"

#include "sim/logging.hh"

namespace qtenon::vqa {

using quantum::GateType;
using quantum::Pauli;

void
MeasurementGroup::appendReadout(quantum::QuantumCircuit &c) const
{
    for (std::uint32_t q = 0; q < c.numQubits(); ++q) {
        if (q >= basis.size())
            break;
        switch (basis[q]) {
          case Pauli::I:
          case Pauli::Z:
            break;
          case Pauli::X:
            c.h(q);
            break;
          case Pauli::Y:
            // Rotate the Y eigenbasis onto Z: Sdg then H.
            c.gate(GateType::Sdg, q);
            c.h(q);
            break;
        }
    }
    c.measureAll();
}

GroupedEstimator::GroupedEstimator(const quantum::Hamiltonian &h)
    : _h(h)
{
    for (std::size_t t = 0; t < _h.terms().size(); ++t) {
        const auto &term = _h.terms()[t];

        // Find a group whose bases are compatible qubit-wise.
        MeasurementGroup *home = nullptr;
        for (auto &g : _groups) {
            bool ok = true;
            for (const auto &f : term.string.factors) {
                const auto current = g.basis[f.qubit];
                if (current != Pauli::I && current != f.op) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                home = &g;
                break;
            }
        }
        if (!home) {
            _groups.emplace_back();
            _groups.back().basis.assign(_h.numQubits(), Pauli::I);
            home = &_groups.back();
        }
        for (const auto &f : term.string.factors)
            home->basis[f.qubit] = f.op;
        home->terms.push_back(t);
    }
}

double
GroupedEstimator::estimate(const quantum::QuantumCircuit &ansatz,
                           quantum::MeasurementSampler &sampler,
                           std::size_t shots_per_group,
                           sim::Rng &rng) const
{
    for (const auto &g : ansatz.gates()) {
        if (g.type == GateType::Measure)
            sim::fatal("grouped estimation needs an unmeasured "
                       "ansatz circuit");
    }

    double energy = _h.identityOffset();
    for (const auto &group : _groups) {
        auto circuit = ansatz;
        group.appendReadout(circuit);
        const auto shots =
            sampler.sample(circuit, shots_per_group, rng);

        for (auto t : group.terms) {
            const auto &term = _h.terms()[t];
            double sum = 0.0;
            for (auto word : shots) {
                // After rotation every factor reads out in Z: the
                // eigenvalue is the parity over the term's qubits.
                int sign = 1;
                for (const auto &f : term.string.factors) {
                    if (word & (std::uint64_t(1) << f.qubit))
                        sign = -sign;
                }
                sum += sign;
            }
            energy += term.coefficient * sum /
                static_cast<double>(shots.size());
        }
    }
    return energy;
}

} // namespace qtenon::vqa
