/**
 * @file
 * The two parameter optimizers of the paper's evaluation (Sec. 7.1):
 * gradient descent via the parameter-shift rule (one parameter probed
 * at a time, many communication rounds) and SPSA (all parameters
 * perturbed at once, two evaluations per iteration).
 *
 * Optimizers are driven through an evaluation oracle so the caller
 * (the VQA driver) can record every evaluation as a trace round.
 */

#ifndef QTENON_VQA_OPTIMIZER_HH
#define QTENON_VQA_OPTIMIZER_HH

#include <functional>
#include <vector>

#include "sim/random.hh"

namespace qtenon::vqa {

/** Which optimizer a run uses. */
enum class OptimizerKind {
    GradientDescent,
    Spsa,
};

/** Evaluate the cost at a parameter vector (one quantum round). */
using EvalOracle =
    std::function<double(const std::vector<double> &params)>;

/** Base optimizer interface: one iteration mutates the parameters. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Run one optimizer iteration in place. Every call to the oracle
     * corresponds to one quantum-classical round.
     *
     * @return the cost estimate at the updated parameters.
     */
    virtual double iterate(std::vector<double> &params,
                           const EvalOracle &oracle) = 0;

    /** Oracle calls one iterate() performs for @p num_params. */
    virtual std::uint64_t evalsPerIteration(
        std::size_t num_params) const = 0;

    /** Host ops of pure optimizer arithmetic per iteration. */
    virtual double optimizerOps(std::size_t num_params) const = 0;
};

/** Parameter-shift gradient descent. */
class GradientDescent : public Optimizer
{
  public:
    explicit GradientDescent(double learning_rate = 0.1)
        : _lr(learning_rate)
    {}

    double iterate(std::vector<double> &params,
                   const EvalOracle &oracle) override;

    std::uint64_t
    evalsPerIteration(std::size_t num_params) const override
    {
        // Two shifted evaluations per parameter + one at the update.
        return 2 * num_params + 1;
    }

    double
    optimizerOps(std::size_t num_params) const override
    {
        return 24.0 * static_cast<double>(num_params);
    }

  private:
    double _lr;
};

/** Simultaneous Perturbation Stochastic Approximation. */
class Spsa : public Optimizer
{
  public:
    Spsa(double a = 0.2, double c = 0.2,
         std::uint64_t seed = 0xD1CEu)
        : _a(a), _c(c), _rng(seed)
    {}

    double iterate(std::vector<double> &params,
                   const EvalOracle &oracle) override;

    std::uint64_t
    evalsPerIteration(std::size_t) const override
    {
        return 2;
    }

    double
    optimizerOps(std::size_t num_params) const override
    {
        return 30.0 * static_cast<double>(num_params);
    }

  private:
    double _a;
    double _c;
    sim::Rng _rng;
    std::uint64_t _k = 0;
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_OPTIMIZER_HH
