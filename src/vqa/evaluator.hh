/**
 * @file
 * The cost evaluator: one owned quantum::Backend + one RNG stream,
 * turning a parameterized circuit into a cost value per optimizer
 * round. This used to live as three near-identical inline paths in
 * the driver (sampled, exact, large-register marginal), each building
 * its own simulator per evaluation; the evaluator allocates the
 * backend once per job and reset()s it in place every round.
 */

#ifndef QTENON_VQA_EVALUATOR_HH
#define QTENON_VQA_EVALUATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cost.hh"
#include "fault/fault.hh"
#include "quantum/backend.hh"
#include "quantum/circuit.hh"
#include "sim/random.hh"

namespace qtenon::vqa {

/** Evaluation policy (a subset of DriverConfig, backend-facing). */
struct EvaluatorConfig {
    /** Engine selection + statevector kernel tuning. */
    quantum::BackendConfig backend;
    std::uint64_t shots = 500;
    /**
     * Evaluate the cost from backend expectation values (all bases)
     * instead of the sampled diagonal readout. Only honoured on
     * exact engines within the exact cap.
     */
    bool useExactCost = false;
    /** Per-qubit readout bit-flip probability (0 = ideal). */
    double readoutError = 0.0;
    /** Optional fault injection (not owned): site "readout" adds
     *  injector-driven measurement bit flips on top of readoutError,
     *  drawn from the injector's own stream so they are counted. */
    fault::FaultInjector *injector = nullptr;
};

/**
 * Evaluates a cost function against circuits on one backend chosen by
 * the selection policy at construction. The same instance serves
 * every optimizer round of a job: run() resets the state in place,
 * so there is no per-evaluation 2^n allocation.
 */
class CostEvaluator
{
  public:
    CostEvaluator(std::uint32_t num_qubits, const EvaluatorConfig &cfg,
                  std::uint64_t seed);

    /**
     * Execute @p c on the backend and evaluate @p cost. When
     * @p shot_data is non-null, readout words are drawn (and stored
     * there) and the cost comes from them — unless exact-cost mode is
     * active, which still draws the shots for the timing trace but
     * scores from expectation values. When @p shot_data is null the
     * cost comes from expectation values (exact mode), sampled words
     * (n <= 64), or per-qubit marginals (wide registers), matching
     * the historical driver paths.
     */
    double evaluate(const quantum::QuantumCircuit &c,
                    const CostFunction &cost,
                    std::vector<std::uint64_t> *shot_data = nullptr);

    quantum::Backend &backend() { return *_backend; }
    const quantum::Backend &backend() const { return *_backend; }
    sim::Rng &rng() { return _rng; }

  private:
    /** Sample the prepared backend, applying readout flips if any. */
    std::vector<std::uint64_t> sampleWithReadout();

    EvaluatorConfig _cfg;
    std::unique_ptr<quantum::Backend> _backend;
    sim::Rng _rng;
    fault::FaultInjector *_inj = nullptr;
    fault::SiteId _readoutSite = 0;
    /** Injected per-bit flip rate (cached from the spec). */
    double _flipRate = 0.0;
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_EVALUATOR_HH
