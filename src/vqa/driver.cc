#include "driver.hh"

#include <bit>
#include <memory>
#include <optional>

#include "evaluator.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "quantum/kernels.hh"

namespace qtenon::vqa {

std::string
canonicalText(const DriverConfig &cfg)
{
    static const char digits[] = "0123456789abcdef";
    const auto ro = std::bit_cast<std::uint64_t>(cfg.readoutError);
    std::string rohex(16, '0');
    for (int i = 0; i < 16; ++i)
        rohex[15 - i] = digits[(ro >> (4 * i)) & 0xf];

    std::string out;
    out += "shots=" + std::to_string(cfg.shots);
    out += ";iters=" + std::to_string(cfg.iterations);
    out += ";opt=";
    out += cfg.optimizer == OptimizerKind::GradientDescent ? "gd"
                                                           : "spsa";
    out += ";seed=" + std::to_string(cfg.seed);
    out += ";cap=" + std::to_string(cfg.exactCap);
    out += ";backend=";
    out += quantum::backendKindName(cfg.backend);
    out += ";fuse=" + std::to_string(cfg.kernel.fuse1q ? 1 : 0);
    out += ";threads=" + std::to_string(cfg.kernel.threads);
    out += ";pmin=" + std::to_string(cfg.kernel.parallelMinQubits);
    out += ";simd=";
    out += quantum::simdModeName(cfg.kernel.simd);
    out += ";shotdata=" +
        std::to_string(cfg.recordShotData ? 1 : 0);
    out += ";exact=" + std::to_string(cfg.useExactCost ? 1 : 0);
    out += ";ro=" + rohex;
    // Appended only when set so historical cache keys survive.
    if (cfg.isaVector)
        out += ";vector=1";
    return out;
}

runtime::VqaTrace
VqaDriver::run(Workload &w)
{
    const auto n = w.circuit.numQubits();
    runtime::VqaTrace trace;
    trace.numQubits = n;

    isa::PipelineConfig pipe;
    pipe.vectorIsa = _cfg.isaVector;
    isa::QtenonCompiler compiler(isa::CompilerCostModel{}, pipe);
    auto *cache = _cfg.compileCache ? _cfg.compileCache
                                    : isa::processCompileCache();
    trace.image = cache ? cache->compile(w.circuit, compiler)
                        : compiler.compile(w.circuit);

    EvaluatorConfig ecfg;
    ecfg.backend.kind = _cfg.backend;
    ecfg.backend.exactCap = _cfg.exactCap;
    ecfg.backend.kernel = _cfg.kernel;
    ecfg.shots = _cfg.shots;
    ecfg.useExactCost = _cfg.useExactCost;
    ecfg.readoutError = _cfg.readoutError;
    ecfg.injector = _cfg.injector;
    CostEvaluator eval(n, ecfg, _cfg.seed);
    trace.backend = eval.backend().name();

    std::unique_ptr<Optimizer> opt;
    if (_cfg.optimizer == OptimizerKind::GradientDescent)
        opt = std::make_unique<GradientDescent>();
    else
        opt = std::make_unique<Spsa>(0.2, 0.2, _cfg.seed ^ 0xABCDu);

    const auto num_params = w.circuit.numParameters();
    const double opt_ops_per_round =
        opt->optimizerOps(num_params) /
        static_cast<double>(opt->evalsPerIteration(num_params));
    const bool record_shots = _cfg.recordShotData && n <= 64;

    std::vector<double> prev_params = w.circuit.parameters();

    fault::FaultInjector *inj = _cfg.injector;
    const fault::SiteId eval_site = inj ? inj->site("eval") : 0;
    const bool eval_faults = inj && inj->active(eval_site);
    const std::uint32_t eval_budget = eval_faults
        ? std::max(1u, _cfg.evalRetry.maxAttempts) : 1;
    double last_good = 0.0;
    bool have_good = false;

    const std::string engine = trace.backend;
    EvalOracle oracle = [&](const std::vector<double> &params) {
        std::optional<obs::ScopedSpan> span;
        if (obs::tracingEnabled())
            span.emplace("evaluate", "vqa",
                         std::vector<std::pair<std::string,
                                               std::string>>{
                             {"backend", engine}});
        if (obs::metricsEnabled()) {
            static auto &c = obs::counter(
                "vqa.evaluations", "cost-oracle evaluations");
            c.inc();
        }
        w.circuit.setParameters(params);
        double cost = 0.0;
        bool ok = false;
        for (std::uint32_t attempt = 1; attempt <= eval_budget;
             ++attempt) {
            // Every attempt costs a full round in the timing trace:
            // the shots ran even when the result is then lost. A
            // re-run needs no new parameter updates (prev == params).
            runtime::RoundRecord round;
            round.updates = compiler.planUpdates(trace.image,
                                                 prev_params, params);
            prev_params = params;
            round.shots = _cfg.shots;
            round.postOpsPerShot = w.cost->opsPerShot();
            round.optimizerOps = opt_ops_per_round;

            cost = eval.evaluate(
                w.circuit, *w.cost,
                record_shots ? &round.shotData : nullptr);
            trace.rounds.push_back(std::move(round));

            if (!eval_faults || !(inj->shouldDrop(eval_site) ||
                                  inj->shouldCorrupt(eval_site))) {
                ok = true;
                break;
            }
            if (attempt < eval_budget)
                inj->count(eval_site, "requeued");
        }
        if (!ok) {
            // Budget spent: discard the evaluation. Returning the
            // last good cost keeps GD finite differences at zero for
            // this term and keeps SPSA's symmetric step bounded,
            // instead of poisoning the optimizer with a corrupted
            // value.
            inj->count(eval_site, "discarded");
            if (have_good)
                cost = last_good;
        }
        last_good = cost;
        have_good = true;
        return cost;
    };

    std::vector<double> params = w.circuit.parameters();
    for (std::uint32_t it = 0; it < _cfg.iterations; ++it) {
        std::optional<obs::ScopedSpan> span;
        if (obs::tracingEnabled())
            span.emplace("iterate", "vqa",
                         std::vector<std::pair<std::string,
                                               std::string>>{
                             {"iteration", std::to_string(it)},
                             {"backend", engine}});
        if (obs::metricsEnabled()) {
            static auto &c = obs::counter(
                "vqa.iterations", "optimizer iterations");
            c.inc();
        }
        const double cost = opt->iterate(params, oracle);
        trace.costHistory.push_back(cost);
    }
    w.circuit.setParameters(params);

    return trace;
}

} // namespace qtenon::vqa
