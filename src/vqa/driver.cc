#include "driver.hh"

#include <memory>

#include "quantum/sampler.hh"
#include "sim/logging.hh"

namespace qtenon::vqa {

runtime::VqaTrace
VqaDriver::run(Workload &w)
{
    const auto n = w.circuit.numQubits();
    runtime::VqaTrace trace;
    trace.numQubits = n;

    isa::QtenonCompiler compiler;
    trace.image = compiler.compile(w.circuit);

    auto sampler = quantum::makeDefaultSampler(n, _cfg.exactCap,
                                               _cfg.readoutError);
    sim::Rng rng(_cfg.seed);

    std::unique_ptr<Optimizer> opt;
    if (_cfg.optimizer == OptimizerKind::GradientDescent)
        opt = std::make_unique<GradientDescent>();
    else
        opt = std::make_unique<Spsa>(0.2, 0.2, _cfg.seed ^ 0xABCDu);

    const auto num_params = w.circuit.numParameters();
    const double opt_ops_per_round =
        opt->optimizerOps(num_params) /
        static_cast<double>(opt->evalsPerIteration(num_params));
    const bool record_shots = _cfg.recordShotData && n <= 64;

    std::vector<double> prev_params = w.circuit.parameters();

    EvalOracle oracle = [&](const std::vector<double> &params) {
        runtime::RoundRecord round;
        round.updates =
            compiler.planUpdates(trace.image, prev_params, params);
        prev_params = params;
        round.shots = _cfg.shots;
        round.postOpsPerShot = w.cost->opsPerShot();
        round.optimizerOps = opt_ops_per_round;

        w.circuit.setParameters(params);
        double cost;
        const bool exact_cost =
            _cfg.useExactCost && n <= _cfg.exactCap;
        if (record_shots) {
            round.shotData =
                sampler->sample(w.circuit, _cfg.shots, rng);
            cost = exact_cost
                ? w.cost->exactFromCircuit(w.circuit)
                : w.cost->fromShots(round.shotData);
        } else if (exact_cost) {
            cost = w.cost->exactFromCircuit(w.circuit);
        } else if (n <= 64) {
            auto shots = sampler->sample(w.circuit, _cfg.shots, rng);
            cost = w.cost->fromShots(shots);
        } else {
            // Large registers: evaluate from mean-field marginals.
            auto *mf = dynamic_cast<quantum::MeanFieldSampler *>(
                sampler.get());
            if (!mf)
                sim::panic("large register without mean-field sampler");
            const auto bloch = mf->evolve(w.circuit);
            std::vector<double> p1(n);
            for (std::uint32_t q = 0; q < n; ++q)
                p1[q] = (1.0 - bloch[q][2]) / 2.0;
            cost = w.cost->fromMarginals(p1);
        }

        trace.rounds.push_back(std::move(round));
        return cost;
    };

    std::vector<double> params = w.circuit.parameters();
    for (std::uint32_t it = 0; it < _cfg.iterations; ++it) {
        const double cost = opt->iterate(params, oracle);
        trace.costHistory.push_back(cost);
    }
    w.circuit.setParameters(params);

    return trace;
}

} // namespace qtenon::vqa
