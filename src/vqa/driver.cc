#include "driver.hh"

#include <memory>
#include <optional>

#include "evaluator.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"

namespace qtenon::vqa {

runtime::VqaTrace
VqaDriver::run(Workload &w)
{
    const auto n = w.circuit.numQubits();
    runtime::VqaTrace trace;
    trace.numQubits = n;

    isa::QtenonCompiler compiler;
    trace.image = compiler.compile(w.circuit);

    EvaluatorConfig ecfg;
    ecfg.backend.kind = _cfg.backend;
    ecfg.backend.exactCap = _cfg.exactCap;
    ecfg.backend.kernel = _cfg.kernel;
    ecfg.shots = _cfg.shots;
    ecfg.useExactCost = _cfg.useExactCost;
    ecfg.readoutError = _cfg.readoutError;
    CostEvaluator eval(n, ecfg, _cfg.seed);
    trace.backend = eval.backend().name();

    std::unique_ptr<Optimizer> opt;
    if (_cfg.optimizer == OptimizerKind::GradientDescent)
        opt = std::make_unique<GradientDescent>();
    else
        opt = std::make_unique<Spsa>(0.2, 0.2, _cfg.seed ^ 0xABCDu);

    const auto num_params = w.circuit.numParameters();
    const double opt_ops_per_round =
        opt->optimizerOps(num_params) /
        static_cast<double>(opt->evalsPerIteration(num_params));
    const bool record_shots = _cfg.recordShotData && n <= 64;

    std::vector<double> prev_params = w.circuit.parameters();

    const std::string engine = trace.backend;
    EvalOracle oracle = [&](const std::vector<double> &params) {
        std::optional<obs::ScopedSpan> span;
        if (obs::tracingEnabled())
            span.emplace("evaluate", "vqa",
                         std::vector<std::pair<std::string,
                                               std::string>>{
                             {"backend", engine}});
        if (obs::metricsEnabled()) {
            static auto &c = obs::counter(
                "vqa.evaluations", "cost-oracle evaluations");
            c.inc();
        }
        runtime::RoundRecord round;
        round.updates =
            compiler.planUpdates(trace.image, prev_params, params);
        prev_params = params;
        round.shots = _cfg.shots;
        round.postOpsPerShot = w.cost->opsPerShot();
        round.optimizerOps = opt_ops_per_round;

        w.circuit.setParameters(params);
        const double cost = eval.evaluate(
            w.circuit, *w.cost,
            record_shots ? &round.shotData : nullptr);

        trace.rounds.push_back(std::move(round));
        return cost;
    };

    std::vector<double> params = w.circuit.parameters();
    for (std::uint32_t it = 0; it < _cfg.iterations; ++it) {
        std::optional<obs::ScopedSpan> span;
        if (obs::tracingEnabled())
            span.emplace("iterate", "vqa",
                         std::vector<std::pair<std::string,
                                               std::string>>{
                             {"iteration", std::to_string(it)},
                             {"backend", engine}});
        if (obs::metricsEnabled()) {
            static auto &c = obs::counter(
                "vqa.iterations", "optimizer iterations");
            c.inc();
        }
        const double cost = opt->iterate(params, oracle);
        trace.costHistory.push_back(cost);
    }
    w.circuit.setParameters(params);

    return trace;
}

} // namespace qtenon::vqa
