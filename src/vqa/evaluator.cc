#include "evaluator.hh"

#include "sim/logging.hh"

namespace qtenon::vqa {

CostEvaluator::CostEvaluator(std::uint32_t num_qubits,
                             const EvaluatorConfig &cfg,
                             std::uint64_t seed)
    : _cfg(cfg),
      _backend(quantum::makeBackend(num_qubits, cfg.backend)),
      _rng(seed)
{
    if (cfg.readoutError < 0.0 || cfg.readoutError > 0.5)
        sim::fatal("readout flip probability must be in [0, 0.5], "
                   "got ", cfg.readoutError);
    if (cfg.injector) {
        _inj = cfg.injector;
        _readoutSite = _inj->site("readout");
        _flipRate = _inj->faults(_readoutSite).flip;
    }
}

std::vector<std::uint64_t>
CostEvaluator::sampleWithReadout()
{
    auto out = _backend->sample(_cfg.shots, _rng);
    const auto n = _backend->numQubits();
    if (_cfg.readoutError > 0.0) {
        // Same flip order as NoisyReadoutSampler: per word, per qubit.
        for (auto &word : out) {
            for (std::uint32_t q = 0; q < n; ++q) {
                if (_rng.coin(_cfg.readoutError))
                    word ^= std::uint64_t(1) << q;
            }
        }
    }
    if (_flipRate > 0.0) {
        // Injected flips draw from the injector's "readout" stream,
        // so each one is counted and traced.
        for (auto &word : out) {
            for (std::uint32_t q = 0; q < n; ++q) {
                if (_inj->shouldFlipBit(_readoutSite))
                    word ^= std::uint64_t(1) << q;
            }
        }
    }
    return out;
}

double
CostEvaluator::evaluate(const quantum::QuantumCircuit &c,
                        const CostFunction &cost,
                        std::vector<std::uint64_t> *shot_data)
{
    _backend->run(c);
    const auto n = _backend->numQubits();
    const bool exact_cost = _cfg.useExactCost && _backend->exact() &&
        n <= _cfg.backend.exactCap;

    if (shot_data != nullptr) {
        *shot_data = sampleWithReadout();
        return exact_cost ? cost.fromBackend(*_backend)
                          : cost.fromShots(*shot_data);
    }
    if (exact_cost)
        return cost.fromBackend(*_backend);
    if (n <= 64) {
        const auto shots = sampleWithReadout();
        return cost.fromShots(shots);
    }
    // Wide registers: evaluate from per-qubit marginals, with the
    // analytic readout-error adjustment p' = p(1-e) + (1-p)e.
    auto p1 = _backend->marginals();
    if (_cfg.readoutError > 0.0 || _flipRate > 0.0) {
        // Independent flip sources compose: 1-2e' = (1-2a)(1-2b).
        const double a = _cfg.readoutError;
        const double b = _flipRate;
        const double e = a + b - 2.0 * a * b;
        for (auto &p : p1)
            p = p * (1.0 - e) + (1.0 - p) * e;
    }
    return cost.fromMarginals(p1);
}

} // namespace qtenon::vqa
