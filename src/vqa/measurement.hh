/**
 * @file
 * Measurement-basis grouping for Hamiltonian estimation.
 *
 * Sampling can only read the Z basis; non-diagonal Pauli terms need
 * basis-change rotations before measurement (X -> H, Y -> Sdg H).
 * Terms whose per-qubit bases agree (qubit-wise commuting) share one
 * rotated circuit, so a full <H> estimate costs one sampled
 * execution per group - this is what a real VQE run on Qtenon would
 * schedule as several q_gen/q_run rounds per evaluation.
 */

#ifndef QTENON_VQA_MEASUREMENT_HH
#define QTENON_VQA_MEASUREMENT_HH

#include <cstddef>
#include <vector>

#include "quantum/circuit.hh"
#include "quantum/pauli.hh"
#include "quantum/sampler.hh"
#include "sim/random.hh"

namespace qtenon::vqa {

/** Terms sharing one measurement basis. */
struct MeasurementGroup {
    /** Per-qubit basis requirement (I = free, measured in Z). */
    std::vector<quantum::Pauli> basis;
    /** Indices into the Hamiltonian's term list. */
    std::vector<std::size_t> terms;

    /** Append the basis-change rotations + measurement to @p c. */
    void appendReadout(quantum::QuantumCircuit &c) const;
};

/** Greedy qubit-wise-commuting grouping + sampled estimation. */
class GroupedEstimator
{
  public:
    explicit GroupedEstimator(const quantum::Hamiltonian &h);

    const quantum::Hamiltonian &hamiltonian() const { return _h; }
    const std::vector<MeasurementGroup> &groups() const
    {
        return _groups;
    }

    /**
     * Estimate <H> on the state prepared by @p ansatz (which must
     * not contain measurements): one sampled execution of the
     * rotated circuit per group, @p shots_per_group each.
     */
    double estimate(const quantum::QuantumCircuit &ansatz,
                    quantum::MeasurementSampler &sampler,
                    std::size_t shots_per_group,
                    sim::Rng &rng) const;

    /** Quantum executions one evaluation costs (= group count). */
    std::size_t numExecutions() const { return _groups.size(); }

  private:
    quantum::Hamiltonian _h;
    std::vector<MeasurementGroup> _groups;
};

} // namespace qtenon::vqa

#endif // QTENON_VQA_MEASUREMENT_HH
