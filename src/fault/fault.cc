#include "fault.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/hash.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"

namespace qtenon::fault {

std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
hashName(const std::string &s)
{
    return core::fnv1a(s);
}

bool
SiteFaults::any() const
{
    return drop > 0.0 || dup > 0.0 || corrupt > 0.0 ||
        reorder > 0.0 || error > 0.0 || stall > 0.0 || flip > 0.0 ||
        jitter > 0;
}

namespace {

double
parseRate(const std::string &entry, const std::string &value)
{
    char *end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || std::isnan(p) ||
        p < 0.0 || p > 1.0) {
        throw std::invalid_argument(
            "fault-spec: '" + entry +
            "': probability must be in [0, 1]");
    }
    return p;
}

sim::Tick
parseNs(const std::string &entry, const std::string &value)
{
    char *end = nullptr;
    const double ns = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || std::isnan(ns) ||
        ns < 0.0) {
        throw std::invalid_argument(
            "fault-spec: '" + entry +
            "': duration must be a non-negative nanosecond count");
    }
    return static_cast<sim::Tick>(ns * sim::nsTicks);
}

std::string
formatRate(double p)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", p);
    return buf;
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string entry = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq + 1 == entry.size()) {
            throw std::invalid_argument(
                "fault-spec: '" + entry +
                "' is not of the form site.kind=value");
        }
        const std::string key = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);

        if (key == "seed") {
            spec.seed = std::strtoull(value.c_str(), nullptr, 10);
            continue;
        }

        const std::size_t dot = key.find('.');
        if (dot == std::string::npos || dot == 0 ||
            dot + 1 == key.size()) {
            throw std::invalid_argument(
                "fault-spec: '" + entry +
                "' is not of the form site.kind=value");
        }
        const std::string site = key.substr(0, dot);
        const std::string kind = key.substr(dot + 1);
        SiteFaults &f = spec.sites[site];

        if (kind == "drop")
            f.drop = parseRate(entry, value);
        else if (kind == "dup")
            f.dup = parseRate(entry, value);
        else if (kind == "corrupt")
            f.corrupt = parseRate(entry, value);
        else if (kind == "reorder")
            f.reorder = parseRate(entry, value);
        else if (kind == "error")
            f.error = parseRate(entry, value);
        else if (kind == "stall")
            f.stall = parseRate(entry, value);
        else if (kind == "flip")
            f.flip = parseRate(entry, value);
        else if (kind == "jitter")
            f.jitter = parseNs(entry, value);
        else if (kind == "stall_ns")
            f.stallTicks = parseNs(entry, value);
        else
            throw std::invalid_argument(
                "fault-spec: unknown fault kind '" + kind +
                "' in '" + entry + "' (expected drop, dup, corrupt, "
                "reorder, error, stall, flip, jitter, stall_ns)");
    }
    return spec;
}

std::string
FaultSpec::toString() const
{
    std::string out;
    auto append = [&out](const std::string &site, const char *kind,
                         const std::string &value) {
        if (!out.empty())
            out += ',';
        out += site;
        out += '.';
        out += kind;
        out += '=';
        out += value;
    };
    for (const auto &[site, f] : sites) {
        if (f.drop > 0.0)
            append(site, "drop", formatRate(f.drop));
        if (f.dup > 0.0)
            append(site, "dup", formatRate(f.dup));
        if (f.corrupt > 0.0)
            append(site, "corrupt", formatRate(f.corrupt));
        if (f.reorder > 0.0)
            append(site, "reorder", formatRate(f.reorder));
        if (f.error > 0.0)
            append(site, "error", formatRate(f.error));
        if (f.stall > 0.0)
            append(site, "stall", formatRate(f.stall));
        if (f.flip > 0.0)
            append(site, "flip", formatRate(f.flip));
        if (f.jitter > 0)
            append(site, "jitter",
                   formatRate(sim::ticksToNs(f.jitter)));
        if (f.stallTicks != SiteFaults{}.stallTicks)
            append(site, "stall_ns",
                   formatRate(sim::ticksToNs(f.stallTicks)));
    }
    if (seed != 0) {
        if (!out.empty())
            out += ',';
        out += "seed=" + std::to_string(seed);
    }
    return out;
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : _spec(std::move(spec)), _seed(seed)
{
    // Intern the spec'd sites up front so ids are stable in spec
    // order regardless of first-lookup order at the call sites.
    for (const auto &[name, faults] : _spec.sites)
        site(name);
}

SiteId
FaultInjector::site(const std::string &name)
{
    auto it = _ids.find(name);
    if (it != _ids.end())
        return it->second;

    const SiteId id = static_cast<SiteId>(_sites.size());
    SiteState st;
    st.name = name;
    auto fit = _spec.sites.find(name);
    if (fit != _spec.sites.end())
        st.faults = fit->second;
    st.active = st.faults.any();
    // Per-site stream: independent of every other site and of the
    // lookup order (the name, not the id, feeds the seed).
    st.rng = sim::Rng(mix64(_seed ^ hashName(name)));
    _sites.push_back(std::move(st));
    _ids.emplace(name, id);
    return id;
}

const SiteFaults &
FaultInjector::faults(SiteId s) const
{
    return _sites.at(s).faults;
}

bool
FaultInjector::active(SiteId s) const
{
    return _sites.at(s).active;
}

void
FaultInjector::record(SiteState &st, const std::string &kind,
                      std::uint64_t n)
{
    st.counts[kind] += n;
    if (obs::metricsEnabled()) {
        obs::counter("fault." + st.name + "." + kind,
                     "injected " + kind + " faults at site " +
                         st.name)
            .add(n);
    }
    if (auto *sink = obs::traceSink()) {
        sink->instant(obs::TraceEventSink::wallPid, obs::currentTid(),
                      "fault." + st.name + "." + kind, "fault",
                      sink->nowUs());
    }
}

bool
FaultInjector::decide(SiteId s, double rate, const char *kind)
{
    SiteState &st = _sites.at(s);
    if (rate <= 0.0)
        return false;
    if (!st.rng.coin(rate))
        return false;
    ++_injections;
    record(st, kind, 1);
    return true;
}

bool
FaultInjector::shouldDrop(SiteId s)
{
    return decide(s, faults(s).drop, "drop");
}

bool
FaultInjector::shouldDuplicate(SiteId s)
{
    return decide(s, faults(s).dup, "dup");
}

bool
FaultInjector::shouldCorrupt(SiteId s)
{
    return decide(s, faults(s).corrupt, "corrupt");
}

bool
FaultInjector::shouldReorder(SiteId s)
{
    return decide(s, faults(s).reorder, "reorder");
}

bool
FaultInjector::shouldError(SiteId s)
{
    return decide(s, faults(s).error, "error");
}

bool
FaultInjector::shouldStall(SiteId s)
{
    return decide(s, faults(s).stall, "stall");
}

bool
FaultInjector::shouldFlipBit(SiteId s)
{
    return decide(s, faults(s).flip, "flip");
}

sim::Tick
FaultInjector::jitterTicks(SiteId s)
{
    SiteState &st = _sites.at(s);
    if (st.faults.jitter == 0)
        return 0;
    const auto extra = static_cast<sim::Tick>(
        st.rng.uniform() * static_cast<double>(st.faults.jitter));
    if (extra > 0) {
        ++_injections;
        record(st, "jitter", 1);
    }
    return extra;
}

std::uint64_t
FaultInjector::corruptWord(SiteId s, std::uint64_t word)
{
    SiteState &st = _sites.at(s);
    return word ^ (std::uint64_t{1} << st.rng.index(64));
}

void
FaultInjector::count(SiteId s, const std::string &what,
                     std::uint64_t n)
{
    if (n == 0)
        return;
    record(_sites.at(s), what, n);
}

void
FaultInjector::exportCounters(std::map<std::string, double> &out) const
{
    for (const auto &st : _sites) {
        for (const auto &[kind, n] : st.counts) {
            if (n > 0)
                out["fault." + st.name + "." + kind] +=
                    static_cast<double>(n);
        }
    }
}

std::uint64_t
RetryPolicy::backoffBefore(std::uint32_t attempt,
                           std::uint64_t seed) const
{
    if (backoff == 0)
        return 0;
    double b = static_cast<double>(backoff);
    for (std::uint32_t i = 1; i < attempt; ++i)
        b *= multiplier;
    if (maxBackoff > 0)
        b = std::min(b, static_cast<double>(maxBackoff));
    if (jitter > 0.0) {
        // mix64 of (seed, attempt) mapped to [0, 1): the schedule is
        // a pure function of the job's seed, not of wall time.
        const double u =
            static_cast<double>(mix64(seed ^ attempt) >> 11) /
            static_cast<double>(1ull << 53);
        b *= 1.0 - jitter + 2.0 * jitter * u;
    }
    return static_cast<std::uint64_t>(b);
}

} // namespace qtenon::fault
