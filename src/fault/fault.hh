/**
 * @file
 * Deterministic fault injection for the classical-quantum link models
 * and the batch service.
 *
 * The paper's decoupled-vs-coupled comparison assumes a *perfect*
 * Ethernet/UDP link; this layer removes that best-case assumption.
 * A `FaultSpec` (parsed from a `--fault-spec` string such as
 * `eth.drop=0.01,adi.jitter=200`) assigns per-site fault rates, and a
 * `FaultInjector` turns them into concrete per-event decisions —
 * drop, duplicate, reorder, delay (jittered latency), bit-corrupt,
 * stall, response-error — drawn from per-site RNG streams.
 *
 * Determinism contract (mirrors the service's seeding rules):
 *
 *   - every site draws from its own stream, seeded from
 *     (injector seed, interned site name), so adding faults at one
 *     site never perturbs another site's sequence;
 *   - an injector is owned by exactly one job and seeded from the
 *     job id, so a batch's injection sequences are bit-identical
 *     regardless of worker count or completion order;
 *   - sites are interned to small ids (the same machinery as
 *     `obs::MetricsRegistry`), so hot paths cache a `SiteId` and a
 *     decision is one table index plus one RNG draw.
 *
 * Every injected fault increments a per-site counter (exported into
 * `JobResult::metrics` as `fault.<site>.<kind>`), the matching obs
 * counter, and — when tracing is on — a trace instant, so a Perfetto
 * timeline shows exactly where the link misbehaved.
 */

#ifndef QTENON_FAULT_FAULT_HH
#define QTENON_FAULT_FAULT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace qtenon::fault {

/** splitmix64: the service's job-seed mixer, reused for streams. */
std::uint64_t mix64(std::uint64_t z);

/** Stable 64-bit FNV-1a of @p s (site-name stream derivation). */
std::uint64_t hashName(const std::string &s);

/**
 * Fault rates of one injection site. Rates are per-event
 * probabilities in [0, 1]; `jitter` / `stallTicks` are durations.
 */
struct SiteFaults {
    /** Message silently lost (site.drop=P). */
    double drop = 0.0;
    /** Message delivered twice (site.dup=P). */
    double dup = 0.0;
    /** Payload bit flipped in flight (site.corrupt=P). */
    double corrupt = 0.0;
    /** Message overtaken by its successors (site.reorder=P). */
    double reorder = 0.0;
    /** Response-error rate for request/response sites (site.error=P). */
    double error = 0.0;
    /** Stall rate for pipelined sites (site.stall=P). */
    double stall = 0.0;
    /** Per-bit readout flip rate (site.flip=P). */
    double flip = 0.0;
    /** Max uniform extra delay per message (site.jitter=NS). */
    sim::Tick jitter = 0;
    /** Duration of one injected stall (site.stall_ns=NS). */
    sim::Tick stallTicks = 100 * sim::nsTicks;

    /** Whether any rate is nonzero. */
    bool any() const;
};

/**
 * The parsed `--fault-spec`: a map of site name -> fault rates plus
 * the injection seed. The textual form is a comma-separated list of
 * `site.kind=value` entries, e.g.
 *
 *   eth.drop=0.01,eth.jitter=200,adi.jitter=50,bus.error=0.001
 *
 * Probabilities (`drop`, `dup`, `corrupt`, `reorder`, `error`,
 * `stall`, `flip`) take values in [0, 1]; durations (`jitter`,
 * `stall_ns`) are in nanoseconds. The special entry `seed=N` sets
 * the injection seed (0 keeps the job-derived default).
 */
struct FaultSpec {
    std::map<std::string, SiteFaults> sites;
    /** Injection seed; 0 = derive from the owning job's seed. */
    std::uint64_t seed = 0;

    bool empty() const { return sites.empty(); }

    /** Parse the textual form; throws std::invalid_argument. */
    static FaultSpec parse(const std::string &text);

    /** Canonical textual form (sites sorted; parse round-trips). */
    std::string toString() const;
};

/** Interned site handle (index into the injector's site table). */
using SiteId = std::uint32_t;

/**
 * Per-site deterministic fault decisions. One injector per job;
 * single-threaded use (jobs never share an injector).
 */
class FaultInjector
{
  public:
    /**
     * @param spec the fault plan.
     * @param seed stream seed; combined per site with the site-name
     *        hash. Callers derive it from the job id (see
     *        service::deriveJobSeed) for worker-count independence.
     */
    explicit FaultInjector(FaultSpec spec, std::uint64_t seed = 1);

    const FaultSpec &spec() const { return _spec; }
    std::uint64_t seed() const { return _seed; }

    /**
     * Intern @p name to a SiteId. Sites absent from the spec get a
     * zero-rate entry, so call sites can look up unconditionally and
     * every decision on them is "no fault" at near-zero cost.
     */
    SiteId site(const std::string &name);

    /** The rates configured for @p s. */
    const SiteFaults &faults(SiteId s) const;

    /** Whether @p s has any nonzero rate (cheap bypass check). */
    bool active(SiteId s) const;

    /** @name Per-event decisions (each advances the site stream). */
    /// @{
    bool shouldDrop(SiteId s);
    bool shouldDuplicate(SiteId s);
    bool shouldCorrupt(SiteId s);
    bool shouldReorder(SiteId s);
    bool shouldError(SiteId s);
    bool shouldStall(SiteId s);
    /** Per-readout-bit flip decision (rate `flip`). */
    bool shouldFlipBit(SiteId s);
    /** Uniform extra delay in [0, jitter]; 0 when no jitter is set. */
    sim::Tick jitterTicks(SiteId s);
    /** Flip one uniformly chosen bit of @p word (counts `corrupt`). */
    std::uint64_t corruptWord(SiteId s, std::uint64_t word);
    /// @}

    /**
     * Count an injection-adjacent event (e.g. "retransmits",
     * "retry_exhausted") under @p what for @p s: per-site counter,
     * obs counter `fault.<site>.<what>`, trace instant.
     */
    void count(SiteId s, const std::string &what, std::uint64_t n = 1);

    /** Total faults injected (decisions that came back true). */
    std::uint64_t injections() const { return _injections; }

    /**
     * Export every nonzero per-site counter as
     * `fault.<site>.<kind>` -> count into @p out (JobResult::metrics
     * uses this; deterministic for a fixed seed and call sequence).
     */
    void exportCounters(std::map<std::string, double> &out) const;

  private:
    struct SiteState {
        std::string name;
        SiteFaults faults;
        sim::Rng rng;
        bool active = false;
        /** kind -> injected count (std::map: stable export order). */
        std::map<std::string, std::uint64_t> counts;
    };

    /** Bernoulli draw on @p rate, counted under @p kind when true. */
    bool decide(SiteId s, double rate, const char *kind);
    void record(SiteState &st, const std::string &kind,
                std::uint64_t n);

    FaultSpec _spec;
    std::uint64_t _seed;
    std::map<std::string, SiteId> _ids;
    std::vector<SiteState> _sites;
    std::uint64_t _injections = 0;
};

/**
 * Bounded-attempt retry with exponential backoff and deterministic
 * jitter. Unit-agnostic: the link models interpret `backoff` /
 * `attemptTimeout` as simulation ticks, the batch scheduler as
 * milliseconds.
 */
struct RetryPolicy {
    /** Total attempts including the first; 1 = no retry. */
    std::uint32_t maxAttempts = 1;
    /** Backoff before the first retry (units per caller). */
    std::uint64_t backoff = 0;
    /** Geometric growth factor per further retry. */
    double multiplier = 2.0;
    /** Backoff cap; 0 = uncapped. */
    std::uint64_t maxBackoff = 0;
    /** Jitter fraction: each backoff is scaled by a deterministic
     *  factor in [1 - jitter, 1 + jitter). */
    double jitter = 0.0;
    /** Per-attempt timeout; 0 lets the caller pick a default. */
    std::uint64_t attemptTimeout = 0;

    bool enabled() const { return maxAttempts > 1; }

    /**
     * Backoff to wait after failed attempt @p attempt (1-based).
     * Deterministic in (@p attempt, @p seed): the jitter factor is
     * mix64(seed ^ attempt), so a retried job replays the identical
     * schedule on every worker count.
     */
    std::uint64_t backoffBefore(std::uint32_t attempt,
                                std::uint64_t seed) const;
};

} // namespace qtenon::fault

#endif // QTENON_FAULT_FAULT_HH
