/**
 * @file
 * Chrome trace-event timeline sink.
 *
 * `TraceEventSink` buffers trace events in memory and writes the
 * Chrome trace-event JSON format ({"traceEvents":[...]}) that
 * chrome://tracing and https://ui.perfetto.dev load directly.
 *
 * The simulator has two time domains, and the sink keeps them apart
 * with the format's process axis:
 *
 *   - pid 1 (`wallPid`) is the *wall-clock* process: batch-service
 *     workers and the VQA driver emit spans stamped with real
 *     microseconds since the sink's construction, one track (tid)
 *     per OS thread (see currentTid()).
 *   - every *simulated-time* component (a controller, a TileLink
 *     bus) allocates its own pid via allocProcess() and stamps
 *     events with simulated ticks converted to microseconds, so one
 *     q_gen's nanosecond-scale pipeline stages are not crushed
 *     against a millisecond-scale job span.
 *
 * The sink is process-global and optional: instrumentation sites do
 * `if (auto *t = traceSink()) t->...` — a single relaxed atomic load
 * when tracing is off, which keeps the disabled cost at the same
 * "one load and branch" budget as the metrics layer.
 */

#ifndef QTENON_OBS_TRACE_SINK_HH
#define QTENON_OBS_TRACE_SINK_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace qtenon::obs {

class TraceEventSink;

/** The installed sink, or nullptr when tracing is off. */
TraceEventSink *traceSink();

/** Install (or uninstall with nullptr) the process-global sink. */
void setTraceSink(TraceEventSink *sink);

/** Whether any sink is installed. */
inline bool
tracingEnabled()
{
    return traceSink() != nullptr;
}

/**
 * A small, stable per-OS-thread id for the wall-clock process:
 * 0 for the first thread that asks (normally main), then 1, 2, ...
 * in first-use order. Chrome trace tids must be small integers and
 * std::thread::id is neither small nor stable across runs.
 */
std::uint64_t currentTid();

/** One buffered Chrome trace event (see write() for the mapping). */
struct TraceEvent {
    /** 'X' complete, 'B'/'E' span edges, 'i' instant, 'C' counter,
     *  'M' metadata. */
    char ph = 'X';
    std::uint32_t pid = 0;
    std::uint64_t tid = 0;
    /** Timestamp in microseconds (wall or simulated). */
    double tsUs = 0.0;
    /** Duration in microseconds ('X' only). */
    double durUs = 0.0;
    std::string name;
    std::string cat;
    /** Pre-rendered args; values are emitted as JSON strings unless
     *  numeric (see write()). */
    std::vector<std::pair<std::string, std::string>> args;
};

class TraceEventSink
{
  public:
    /** The wall-clock process id (workers, VQA driver). */
    static constexpr std::uint32_t wallPid = 1;

    TraceEventSink();

    /** Wall microseconds since this sink was constructed. */
    double nowUs() const;

    /**
     * Allocate a pid for a simulated-time track group and emit its
     * process_name metadata. Thread-safe.
     */
    std::uint32_t allocProcess(const std::string &label);

    /** A complete span ('X'): [tsUs, tsUs + durUs]. */
    void complete(std::uint32_t pid, std::uint64_t tid,
                  std::string name, std::string cat, double tsUs,
                  double durUs,
                  std::vector<std::pair<std::string, std::string>>
                      args = {});

    /** An instant event ('i'). */
    void instant(std::uint32_t pid, std::uint64_t tid,
                 std::string name, std::string cat, double tsUs);

    /** A counter sample ('C'): one series named @p name. */
    void counterSample(std::uint32_t pid, std::string name,
                       double tsUs, std::int64_t value);

    /** thread_name metadata for (pid, tid). */
    void threadName(std::uint32_t pid, std::uint64_t tid,
                    std::string name);

    /** process_name metadata for @p pid. */
    void processName(std::uint32_t pid, std::string name);

    std::size_t size() const;

    /** Copy of the buffered events (tests). */
    std::vector<TraceEvent> events() const;

    /** Write the {"traceEvents": [...]} JSON document. */
    void write(std::ostream &os) const;

    std::string toJsonString() const;

  private:
    void push(TraceEvent ev);

    mutable std::mutex _mutex;
    std::vector<TraceEvent> _events;
    std::chrono::steady_clock::time_point _epoch;
    std::uint32_t _nextPid = wallPid + 1;
};

/**
 * RAII wall-clock span on the calling thread's wallPid track.
 * Captures the installed sink at construction; emits one 'X' event
 * covering the scope at destruction (nothing if tracing was off).
 */
class ScopedSpan
{
  public:
    ScopedSpan(std::string name, std::string cat,
               std::vector<std::pair<std::string, std::string>>
                   args = {});
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceEventSink *_sink;
    std::string _name;
    std::string _cat;
    std::vector<std::pair<std::string, std::string>> _args;
    double _startUs = 0.0;
};

} // namespace qtenon::obs

#endif // QTENON_OBS_TRACE_SINK_HH
