#include "metrics.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace qtenon::obs {

namespace {

std::atomic<bool> g_enabled{false};

/**
 * JSON string escaping for metric names/descriptions. Names are
 * ASCII by convention but escape defensively anyway.
 */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** %.17g with a forced '.'/exponent, mirroring the service JSON
 *  writer so quantiles re-parse as doubles. */
void
writeJsonDouble(std::ostream &os, double d)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    if (!std::strpbrk(buf, ".eE"))
        std::strcat(buf, ".0");
    os << buf;
}

} // namespace

bool
metricsEnabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q <= 0.0)
        return static_cast<double>(min);
    if (q >= 1.0)
        return static_cast<double>(max);

    // Continuous rank over the sorted recorded values, in
    // [0, count - 1] (the inclusive-endpoint convention: q = 0 is
    // the minimum, q = 1 the maximum).
    const double target = q * static_cast<double>(count - 1);
    std::uint64_t before = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        const std::uint64_t n = buckets[b];
        if (!n)
            continue;
        if (target < static_cast<double>(before + n)) {
            // Values in bucket b lie in [bucketLow(b), 2^b - 1],
            // further clamped by the recorded global extrema.
            std::uint64_t lo = Histogram::bucketLow(b);
            std::uint64_t hi = b + 1 < buckets.size()
                ? Histogram::bucketLow(b + 1) - 1
                : ~std::uint64_t{0};
            lo = std::max(lo, min);
            hi = std::min(hi, max);
            if (n == 1 || hi <= lo)
                return static_cast<double>(lo);
            const double frac =
                (target - static_cast<double>(before)) /
                static_cast<double>(n - 1);
            return static_cast<double>(lo) +
                (static_cast<double>(hi) -
                 static_cast<double>(lo)) *
                frac;
        }
        before += n;
    }
    return static_cast<double>(max);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.count = count();
    s.sum = sum();
    s.min = min();
    s.max = max();
    for (std::size_t b = 0; b < numBuckets; ++b)
        s.buckets[b] = bucket(b);
    return s;
}

void
Histogram::reset()
{
    _count.store(0, std::memory_order_relaxed);
    _sum.store(0, std::memory_order_relaxed);
    _min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    _max.store(0, std::memory_order_relaxed);
    for (auto &b : _buckets)
        b.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry reg;
    return reg;
}

MetricsRegistry &
registry()
{
    return MetricsRegistry::instance();
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _counters[name];
    if (!slot.first) {
        slot.first = std::make_unique<Counter>();
        slot.second = desc;
    }
    return *slot.first;
}

Gauge &
MetricsRegistry::gauge(const std::string &name,
                       const std::string &desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _gauges[name];
    if (!slot.first) {
        slot.first = std::make_unique<Gauge>();
        slot.second = desc;
    }
    return *slot.first;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _histograms[name];
    if (!slot.first) {
        slot.first = std::make_unique<Histogram>();
        slot.second = desc;
    }
    return *slot.first;
}

std::map<std::string, std::uint64_t>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, slot] : _counters)
        out[name] = slot.first->value();
    return out;
}

std::map<std::string, std::int64_t>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::map<std::string, std::int64_t> out;
    for (const auto &[name, slot] : _gauges)
        out[name] = slot.first->value();
    return out;
}

std::map<std::string, HistogramSnapshot>
MetricsRegistry::histogramValues() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::map<std::string, HistogramSnapshot> out;
    for (const auto &[name, slot] : _histograms)
        out[name] = slot.first->snapshot();
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &[name, slot] : _counters)
        slot.first->reset();
    for (auto &[name, slot] : _gauges)
        slot.first->reset();
    for (auto &[name, slot] : _histograms)
        slot.first->reset();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, slot] : _counters) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        os << ": " << slot.first->value();
    }
    os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
    first = true;
    for (const auto &[name, slot] : _gauges) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        os << ": " << slot.first->value();
    }
    os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, slot] : _histograms) {
        const auto s = slot.first->snapshot();
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        os << ": {\"count\": " << s.count << ", \"sum\": " << s.sum
           << ", \"min\": " << s.min << ", \"max\": " << s.max
           << ", \"p50\": ";
        writeJsonDouble(os, s.p50());
        os << ", \"p99\": ";
        writeJsonDouble(os, s.p99());
        os << ", \"p999\": ";
        writeJsonDouble(os, s.p999());
        os << ", \"buckets\": [";
        bool bfirst = true;
        for (std::size_t b = 0; b < Histogram::numBuckets; ++b) {
            if (!s.buckets[b])
                continue;
            os << (bfirst ? "" : ", ") << '['
               << Histogram::bucketLow(b) << ", " << s.buckets[b]
               << ']';
            bfirst = false;
        }
        os << "]}";
    }
    os << (first ? "}" : "\n  }") << "\n}\n";
}

} // namespace qtenon::obs
