#include "trace_sink.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace qtenon::obs {

namespace {

std::atomic<TraceEventSink *> g_sink{nullptr};

std::atomic<std::uint64_t> g_nextTid{0};

/** Render a double timestamp without locale surprises or exponents:
 *  fixed, three decimals (nanosecond resolution in microseconds). */
std::string
renderUs(double us)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Whether an arg value can be emitted as a bare JSON number. */
bool
isJsonNumber(const std::string &s)
{
    if (s.empty())
        return false;
    std::size_t i = s[0] == '-' ? 1 : 0;
    if (i == s.size())
        return false;
    bool dot = false;
    for (; i < s.size(); ++i) {
        if (s[i] == '.') {
            if (dot)
                return false;
            dot = true;
        } else if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
            return false;
        }
    }
    return true;
}

} // namespace

TraceEventSink *
traceSink()
{
    return g_sink.load(std::memory_order_relaxed);
}

void
setTraceSink(TraceEventSink *sink)
{
    g_sink.store(sink, std::memory_order_release);
}

std::uint64_t
currentTid()
{
    thread_local const std::uint64_t tid =
        g_nextTid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

TraceEventSink::TraceEventSink()
    : _epoch(std::chrono::steady_clock::now())
{
    TraceEvent ev;
    ev.ph = 'M';
    ev.pid = wallPid;
    ev.tid = 0;
    ev.name = "process_name";
    ev.args.emplace_back("name", "host (wall clock)");
    push(std::move(ev));
}

double
TraceEventSink::nowUs() const
{
    const auto dt = std::chrono::steady_clock::now() - _epoch;
    return std::chrono::duration<double, std::micro>(dt).count();
}

std::uint32_t
TraceEventSink::allocProcess(const std::string &label)
{
    std::uint32_t pid;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        pid = _nextPid++;
    }
    processName(pid, label);
    return pid;
}

void
TraceEventSink::push(TraceEvent ev)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _events.push_back(std::move(ev));
}

void
TraceEventSink::complete(
    std::uint32_t pid, std::uint64_t tid, std::string name,
    std::string cat, double tsUs, double durUs,
    std::vector<std::pair<std::string, std::string>> args)
{
    TraceEvent ev;
    ev.ph = 'X';
    ev.pid = pid;
    ev.tid = tid;
    ev.tsUs = tsUs;
    ev.durUs = durUs;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceEventSink::instant(std::uint32_t pid, std::uint64_t tid,
                        std::string name, std::string cat,
                        double tsUs)
{
    TraceEvent ev;
    ev.ph = 'i';
    ev.pid = pid;
    ev.tid = tid;
    ev.tsUs = tsUs;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    push(std::move(ev));
}

void
TraceEventSink::counterSample(std::uint32_t pid, std::string name,
                              double tsUs, std::int64_t value)
{
    TraceEvent ev;
    ev.ph = 'C';
    ev.pid = pid;
    ev.tid = 0;
    ev.tsUs = tsUs;
    ev.name = std::move(name);
    ev.args.emplace_back("value", std::to_string(value));
    push(std::move(ev));
}

void
TraceEventSink::threadName(std::uint32_t pid, std::uint64_t tid,
                           std::string name)
{
    TraceEvent ev;
    ev.ph = 'M';
    ev.pid = pid;
    ev.tid = tid;
    ev.name = "thread_name";
    ev.args.emplace_back("name", std::move(name));
    push(std::move(ev));
}

void
TraceEventSink::processName(std::uint32_t pid, std::string name)
{
    TraceEvent ev;
    ev.ph = 'M';
    ev.pid = pid;
    ev.tid = 0;
    ev.name = "process_name";
    ev.args.emplace_back("name", std::move(name));
    push(std::move(ev));
}

std::size_t
TraceEventSink::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _events.size();
}

std::vector<TraceEvent>
TraceEventSink::events() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _events;
}

void
TraceEventSink::write(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    os << "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < _events.size(); ++i) {
        const auto &ev = _events[i];
        os << "  {\"ph\": \"" << ev.ph << "\", \"pid\": " << ev.pid
           << ", \"tid\": " << ev.tid;
        if (ev.ph != 'M')
            os << ", \"ts\": " << renderUs(ev.tsUs);
        if (ev.ph == 'X')
            os << ", \"dur\": " << renderUs(ev.durUs);
        if (ev.ph == 'i')
            os << ", \"s\": \"t\"";
        os << ", \"name\": ";
        writeJsonString(os, ev.name);
        if (!ev.cat.empty()) {
            os << ", \"cat\": ";
            writeJsonString(os, ev.cat);
        }
        if (!ev.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t a = 0; a < ev.args.size(); ++a) {
                if (a)
                    os << ", ";
                writeJsonString(os, ev.args[a].first);
                os << ": ";
                if (isJsonNumber(ev.args[a].second))
                    os << ev.args[a].second;
                else
                    writeJsonString(os, ev.args[a].second);
            }
            os << '}';
        }
        os << '}' << (i + 1 < _events.size() ? "," : "") << '\n';
    }
    os << "]}\n";
}

std::string
TraceEventSink::toJsonString() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

ScopedSpan::ScopedSpan(
    std::string name, std::string cat,
    std::vector<std::pair<std::string, std::string>> args)
    : _sink(traceSink()), _name(std::move(name)),
      _cat(std::move(cat)), _args(std::move(args))
{
    if (_sink)
        _startUs = _sink->nowUs();
}

ScopedSpan::~ScopedSpan()
{
    // Guard against the sink being uninstalled mid-scope (a bench
    // tearing down while a worker unwinds).
    if (!_sink || traceSink() != _sink)
        return;
    _sink->complete(TraceEventSink::wallPid, currentTid(),
                    std::move(_name), std::move(_cat), _startUs,
                    _sink->nowUs() - _startUs, std::move(_args));
}

} // namespace qtenon::obs
