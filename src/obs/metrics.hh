/**
 * @file
 * Process-wide observability metrics: named counters, gauges, and
 * log2-bucketed histograms behind one `MetricsRegistry`.
 *
 * This layer is deliberately separate from `sim::StatGroup`: the sim
 * stats are per-SimObject and die with their owner, while a VQA sweep
 * builds and tears down whole `QtenonSystem`s per job. The registry
 * survives the process, so a fig/ablation bench can aggregate across
 * every job and dump one JSON snapshot at exit.
 *
 * Design constraints, in order:
 *
 *   1. Zero cost when disabled (the default). Every mutation first
 *      reads one process-global relaxed atomic flag and returns —
 *      no locks, no allocation, nothing the optimizer cannot sink.
 *   2. Lock-free when enabled. Counters/gauges/histogram buckets are
 *      relaxed `std::atomic` fetch-adds; min/max are CAS loops. The
 *      registry mutex is taken only on the *first* lookup of a name
 *      (instrumentation sites cache the returned reference).
 *   3. Deterministic where it claims to be. Metric values derived
 *      from simulated time or event counts are identical for a fixed
 *      seed regardless of worker count, because every mutation is a
 *      commutative add. Wall-clock-derived metrics must carry a
 *      `_ns` suffix so tests can exclude them (see naming scheme in
 *      DESIGN.md §9); gauges are instantaneous and likewise excluded.
 *
 * Naming scheme: dotted lowercase `layer.component.metric`, e.g.
 * `controller.pipeline.stage1_busy_cycles`, `mem.dram.latency_ticks`,
 * `service.job.queue_wait_ns`. Suffix `_ticks`/`_cycles` marks
 * deterministic simulated time, `_ns` marks wall-clock time.
 */

#ifndef QTENON_OBS_METRICS_HH
#define QTENON_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace qtenon::obs {

/** Whether metric mutations record anything (process-global). */
bool metricsEnabled();

/** Flip metric recording on/off; off zeroes the fast-path cost. */
void setMetricsEnabled(bool on);

/** A monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        if (metricsEnabled())
            _value.fetch_add(n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * An instantaneous level (worker occupancy, queue depth). Signed so
 * add(-1) on scope exit needs no underflow care at the call site.
 */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
        if (metricsEnabled())
            _value.store(v, std::memory_order_relaxed);
    }

    void add(std::int64_t delta)
    {
        if (metricsEnabled())
            _value.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> _value{0};
};

/** A point-in-time copy of one histogram's state. */
struct HistogramSnapshot {
    std::uint64_t count = 0;
    /** Exact sum of every recorded value (not bucket-approximated). */
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, 65> buckets{};

    /**
     * The @p q-quantile (q in [0, 1]) estimated by linear
     * interpolation inside the log2 bucket holding the target rank.
     * The interpolation range is clamped to the recorded global
     * [min, max], so degenerate shapes come out exact: a histogram
     * whose values are all equal returns that value for every q, and
     * q = 0 / q = 1 return min / max exactly. Returns 0 when empty.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }
};

/**
 * A latency histogram with power-of-two buckets: bucket 0 holds the
 * value 0 and bucket b >= 1 holds values in [2^(b-1), 2^b). 65
 * buckets cover the full uint64 range, so no value is ever clipped
 * and `sum` stays an exact integer — which is what lets fig13 check
 * its printed stage totals against histogram sums *exactly*.
 */
class Histogram
{
  public:
    static constexpr std::size_t numBuckets = 65;

    /** Bucket index for @p v: 0 for 0, else bit_width(v). */
    static std::size_t bucketOf(std::uint64_t v)
    {
        std::size_t b = 0;
        while (v) {
            ++b;
            v >>= 1;
        }
        return b;
    }

    /** Inclusive lower bound of bucket @p b. */
    static std::uint64_t bucketLow(std::size_t b)
    {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    void record(std::uint64_t v)
    {
        if (!metricsEnabled())
            return;
        _count.fetch_add(1, std::memory_order_relaxed);
        _sum.fetch_add(v, std::memory_order_relaxed);
        _buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        casMin(v);
        casMax(v);
    }

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }

    /** Minimum recorded value; 0 when empty. */
    std::uint64_t min() const
    {
        const auto c = count();
        return c ? _min.load(std::memory_order_relaxed) : 0;
    }

    std::uint64_t max() const
    {
        return _max.load(std::memory_order_relaxed);
    }

    std::uint64_t bucket(std::size_t b) const
    {
        return _buckets[b].load(std::memory_order_relaxed);
    }

    double mean() const
    {
        const auto c = count();
        return c ? static_cast<double>(sum()) /
                static_cast<double>(c)
                 : 0.0;
    }

    HistogramSnapshot snapshot() const;

    /** Convenience: snapshot().quantile(q). */
    double quantile(double q) const { return snapshot().quantile(q); }

    void reset();

  private:
    void casMin(std::uint64_t v)
    {
        auto cur = _min.load(std::memory_order_relaxed);
        while (v < cur &&
               !_min.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed))
            ;
    }

    void casMax(std::uint64_t v)
    {
        auto cur = _max.load(std::memory_order_relaxed);
        while (v > cur &&
               !_max.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed))
            ;
    }

    std::atomic<std::uint64_t> _count{0};
    std::atomic<std::uint64_t> _sum{0};
    std::atomic<std::uint64_t> _min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> _max{0};
    std::array<std::atomic<std::uint64_t>, numBuckets> _buckets{};
};

/**
 * The process-wide name -> metric table. Lookup interns the name
 * under a mutex and returns a reference that stays valid for the
 * life of the process; hot paths look up once and cache.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Find-or-create; @p desc is kept from the first registration. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Gauge &gauge(const std::string &name,
                 const std::string &desc = "");
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "");

    /** Snapshots, sorted by name (std::map) for stable output. */
    std::map<std::string, std::uint64_t> counterValues() const;
    std::map<std::string, std::int64_t> gaugeValues() const;
    std::map<std::string, HistogramSnapshot> histogramValues() const;

    /**
     * Zero every registered metric (registrations and cached
     * references stay valid). For test isolation between phases.
     */
    void reset();

    /**
     * Deterministic JSON snapshot: {"counters":{...},"gauges":{...},
     * "histograms":{name:{count,sum,min,max,mean,buckets:[[lo,n]..]}}}
     * with names sorted and empty buckets elided.
     */
    void writeJson(std::ostream &os) const;

  private:
    MetricsRegistry() = default;

    template <typename T>
    using Table =
        std::map<std::string,
                 std::pair<std::unique_ptr<T>, std::string>>;

    mutable std::mutex _mutex;
    Table<Counter> _counters;
    Table<Gauge> _gauges;
    Table<Histogram> _histograms;
};

/** Shorthand for MetricsRegistry::instance(). */
MetricsRegistry &registry();

/** Shorthand lookups (cache the reference at hot call sites). */
inline Counter &
counter(const std::string &name, const std::string &desc = "")
{
    return registry().counter(name, desc);
}

inline Gauge &
gauge(const std::string &name, const std::string &desc = "")
{
    return registry().gauge(name, desc);
}

inline Histogram &
histogram(const std::string &name, const std::string &desc = "")
{
    return registry().histogram(name, desc);
}

} // namespace qtenon::obs

#endif // QTENON_OBS_METRICS_HH
