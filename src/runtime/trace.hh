/**
 * @file
 * The workload trace exchanged between the VQA layer and the two
 * timing models. The functional optimization loop runs once and
 * records, per evaluation round, everything either system needs to
 * account time: the incremental update plan, shot count and sampled
 * readouts, and the host post-processing/optimizer op counts.
 */

#ifndef QTENON_RUNTIME_TRACE_HH
#define QTENON_RUNTIME_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/compiler.hh"
#include "isa/program.hh"

namespace qtenon::runtime {

/** One quantum-classical evaluation round. */
struct RoundRecord {
    /** q_updates (regfile slot, encoded angle) vs the prior round. */
    isa::UpdatePlan updates;
    /** Shots executed this round. */
    std::uint64_t shots = 0;
    /** Sampled readout words (one per shot when n <= 64); may be
     *  empty when only timing is replayed. */
    std::vector<std::uint64_t> shotData;
    /** Host ops per shot for cost-function post-processing. */
    double postOpsPerShot = 0.0;
    /** Host ops for the optimizer work attributed to this round. */
    double optimizerOps = 0.0;
};

/** A complete VQA run, ready for timing replay. */
struct VqaTrace {
    std::uint32_t numQubits = 0;
    /** Functional engine that produced the rounds ("statevector",
     *  "meanfield", ...); empty for hand-built traces. */
    std::string backend;
    /** Compiled Qtenon image of the (structurally fixed) circuit. */
    isa::ProgramImage image;
    std::vector<RoundRecord> rounds;
    /** Cost after each optimizer iteration (functional result). */
    std::vector<double> costHistory;

    std::uint64_t
    totalShots() const
    {
        std::uint64_t s = 0;
        for (const auto &r : rounds)
            s += r.shots;
        return s;
    }

    std::uint64_t
    totalUpdates() const
    {
        std::uint64_t u = 0;
        for (const auto &r : rounds)
            u += r.updates.size();
        return u;
    }
};

} // namespace qtenon::runtime

#endif // QTENON_RUNTIME_TRACE_HH
