/**
 * @file
 * The four-way end-to-end time breakdown the paper reports in every
 * figure: quantum execution, pulse generation, quantum-host
 * communication, and host computation.
 */

#ifndef QTENON_RUNTIME_BREAKDOWN_HH
#define QTENON_RUNTIME_BREAKDOWN_HH

#include "sim/types.hh"

namespace qtenon::runtime {

/**
 * Accumulated busy time per category plus the wall-clock span. Under
 * Qtenon's fine-grained overlap the categories can sum to more than
 * the wall time; percentages are reported against wall.
 */
struct TimeBreakdown {
    sim::Tick quantum = 0;
    sim::Tick pulseGen = 0;
    sim::Tick comm = 0;
    /** Host time visible on the critical path (what the paper's
     *  percentage partitions report). */
    sim::Tick host = 0;
    /** Total host busy time including work hidden behind quantum
     *  execution by fine-grained overlap. */
    sim::Tick hostBusy = 0;
    sim::Tick wall = 0;

    /** Communication split by instruction (Fig. 14b/d). */
    sim::Tick commSet = 0;
    sim::Tick commUpdate = 0;
    sim::Tick commAcquire = 0;

    sim::Tick
    classical() const
    {
        return pulseGen + comm + host;
    }

    TimeBreakdown &
    operator+=(const TimeBreakdown &o)
    {
        quantum += o.quantum;
        pulseGen += o.pulseGen;
        comm += o.comm;
        host += o.host;
        hostBusy += o.hostBusy;
        wall += o.wall;
        commSet += o.commSet;
        commUpdate += o.commUpdate;
        commAcquire += o.commAcquire;
        return *this;
    }

    double
    percent(sim::Tick part) const
    {
        return wall ? 100.0 * static_cast<double>(part) /
                static_cast<double>(wall)
                    : 0.0;
    }
};

} // namespace qtenon::runtime

#endif // QTENON_RUNTIME_BREAKDOWN_HH
