#include "executor.hh"

#include <algorithm>
#include <memory>

#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace qtenon::runtime {

QtenonExecutor::QtenonExecutor(sim::EventQueue &eq,
                               controller::QuantumController &ctrl,
                               isa::QtenonCompiler compiler,
                               ExecutorConfig cfg)
    : _eq(eq), _ctrl(ctrl), _compiler(std::move(compiler)),
      _cfg(std::move(cfg))
{}

void
QtenonExecutor::advanceTo(sim::Tick t)
{
    if (t > _eq.curTick())
        _eq.run(t);
}

void
QtenonExecutor::drain()
{
    _eq.run();
}

void
QtenonExecutor::observeBreakdown(const char *what,
                                 const TimeBreakdown &bd,
                                 sim::Tick start)
{
    if (obs::metricsEnabled()) {
        static auto &quantum = obs::histogram(
            "runtime.breakdown.quantum_ticks",
            "quantum execution ticks per install/round");
        static auto &pulse = obs::histogram(
            "runtime.breakdown.pulsegen_ticks",
            "pulse-generation ticks per install/round");
        static auto &comm = obs::histogram(
            "runtime.breakdown.comm_ticks",
            "communication ticks per install/round");
        static auto &host = obs::histogram(
            "runtime.breakdown.host_ticks",
            "host-visible ticks per install/round");
        static auto &wall = obs::histogram(
            "runtime.breakdown.wall_ticks",
            "end-to-end ticks per install/round");
        quantum.record(bd.quantum);
        pulse.record(bd.pulseGen);
        comm.record(bd.comm);
        host.record(bd.host);
        wall.record(bd.wall);
    }
    if (auto *sink = obs::traceSink()) {
        if (_tracePid == 0) {
            _tracePid =
                sink->allocProcess("executor (sim time)");
            sink->threadName(_tracePid, 0, "install/rounds");
        }
        sink->complete(
            _tracePid, 0, what, "runtime", sim::ticksToUs(start),
            sim::ticksToUs(bd.wall),
            {{"quantum_ticks", std::to_string(bd.quantum)},
             {"pulsegen_ticks", std::to_string(bd.pulseGen)},
             {"comm_ticks", std::to_string(bd.comm)},
             {"host_ticks", std::to_string(bd.host)}});
    }
}

TimeBreakdown
QtenonExecutor::installProgram(const isa::ProgramImage &image)
{
    TimeBreakdown bd;
    const sim::Tick start = _eq.curTick();
    const auto &layout = _ctrl.config().layout;

    // Host-side compile of the whole image. Under CachedIncremental
    // the structural image comes from the compile cache, so the host
    // pays only the front end plus a regfile refill.
    const sim::Tick compile_t = _cfg.host.timeFor(
        _cfg.software.compile == CompileMode::CachedIncremental
            ? _compiler.cachedCompileCycles(image)
            : _compiler.initialCompileCycles(image));
    bd.host += compile_t;
    bd.hostBusy += compile_t;
    advanceTo(start + compile_t);

    // Register regfile dependencies with the controller.
    _ctrl.clearRegfileLinks();
    for (const auto &l : image.links) {
        _ctrl.linkRegfile(l.reg, layout.programAddr(l.qubit, l.entry));
    }

    // Initialize the regfile over RoCC: one q_update per slot, or
    // one q_update.v per wave under the vector ISA.
    const sim::Tick reg_t0 = _eq.curTick();
    if (_cfg.software.vectorIsa && image.hasWaves()) {
        for (const auto &w : image.updateWaves) {
            std::vector<std::uint32_t> values;
            values.reserve(w.count);
            for (std::uint32_t i = 0; i < w.count; ++i)
                values.push_back(
                    image.regfileInit[w.baseReg + i * w.stride]);
            const sim::Tick done = _ctrl.roccWriteVector(
                layout.regfileAddr(w.baseReg), w.stride, values);
            advanceTo(done);
        }
    } else {
        for (std::size_t r = 0; r < image.regfileInit.size(); ++r) {
            const sim::Tick done = _ctrl.roccWrite(
                layout.regfileAddr(static_cast<std::uint32_t>(r)),
                image.regfileInit[r]);
            advanceTo(done);
        }
    }
    bd.commUpdate += _eq.curTick() - reg_t0;

    // q_set every qubit's program chunk; the transfers pipeline on
    // the system bus.
    const sim::Tick set_t0 = _eq.curTick();
    auto remaining =
        std::make_shared<std::uint32_t>(image.numQubits);
    std::uint64_t host_off = 0;
    for (std::uint32_t q = 0; q < image.numQubits; ++q) {
        _ctrl.dmaSetProgram(
            _cfg.hostProgramBase + host_off, q, image.perQubit[q],
            [remaining](sim::Tick) { --(*remaining); });
        host_off += image.perQubit[q].size() *
            _ctrl.config().programEntryHostBytes;
    }
    drain();
    if (*remaining != 0)
        sim::panic("q_set transfers did not drain");
    bd.commSet += _eq.curTick() - set_t0;

    // Initial full q_gen.
    const sim::Tick gen_t0 = _eq.curTick();
    controller::PipelineResult pres;
    _ctrl.generateAll(
        [&pres](const controller::PipelineResult &r, sim::Tick) {
            pres = r;
        });
    drain();
    bd.pulseGen += _eq.curTick() - gen_t0;

    bd.comm = bd.commSet + bd.commUpdate;
    bd.wall = _eq.curTick() - start;
    _programInstalled = true;
    observeBreakdown("install", bd, start);
    return bd;
}

TimeBreakdown
QtenonExecutor::executeRound(const RoundRecord &round,
                             const isa::ProgramImage &image,
                             sim::Tick shot_duration)
{
    if (!_programInstalled)
        sim::panic("executeRound before installProgram");

    TimeBreakdown bd;
    const auto &layout = _ctrl.config().layout;
    const auto &sw = _cfg.software;
    const sim::Tick start = _eq.curTick();

    // ---- Parameter delivery. Both incremental modes take the
    // q_update path; only FullRecompile re-emits the program.
    if (sw.compile != CompileMode::FullRecompile) {
        if (sw.vectorIsa && image.hasWaves() &&
            !round.updates.empty()) {
            // ---- Vector delivery: one q_update.v per touched wave.
            // Untouched interior lanes of a wave ride along carrying
            // their current values (the controller's write-if-
            // different keeps them from invalidating anything).
            struct WaveSpan {
                std::uint32_t lo = ~std::uint32_t(0);
                std::uint32_t hi = 0;
            };
            std::vector<WaveSpan> spans(image.updateWaves.size());
            for (const auto &[reg, val] : round.updates) {
                const auto w = image.waveOfReg(reg);
                if (w == ~std::uint32_t(0))
                    sim::panic("round update to regfile slot ", reg,
                               " outside every image wave");
                spans[w].lo = std::min(spans[w].lo, reg);
                spans[w].hi = std::max(spans[w].hi, reg);
            }
            std::size_t waves = 0, elements = 0;
            for (std::size_t w = 0; w < spans.size(); ++w) {
                const auto &s = spans[w];
                if (s.lo > s.hi)
                    continue;
                ++waves;
                elements +=
                    (s.hi - s.lo) / image.updateWaves[w].stride + 1;
            }
            const sim::Tick prep = _cfg.host.timeFor(
                _compiler.incrementalCyclesVector(waves, elements));
            bd.host += prep;
            bd.hostBusy += prep;
            advanceTo(start + prep);

            const sim::Tick upd_t0 = _eq.curTick();
            for (std::size_t w = 0; w < spans.size(); ++w) {
                const auto &s = spans[w];
                if (s.lo > s.hi)
                    continue;
                const auto stride = image.updateWaves[w].stride;
                std::vector<std::uint32_t> values;
                values.reserve((s.hi - s.lo) / stride + 1);
                for (std::uint32_t r = s.lo; r <= s.hi; r += stride)
                    values.push_back(_ctrl.qcc().readRegfile(r));
                for (const auto &[reg, val] : round.updates) {
                    if (reg >= s.lo && reg <= s.hi)
                        values[(reg - s.lo) / stride] = val;
                }
                const sim::Tick done = _ctrl.roccWriteVector(
                    layout.regfileAddr(s.lo), stride, values);
                advanceTo(done);
            }
            bd.commUpdate += _eq.curTick() - upd_t0;
        } else {
            const sim::Tick prep = _cfg.host.timeFor(
                _compiler.incrementalCycles(round.updates.size()));
            bd.host += prep;
            bd.hostBusy += prep;
            advanceTo(start + prep);

            const sim::Tick upd_t0 = _eq.curTick();
            for (const auto &[reg, val] : round.updates) {
                const sim::Tick done =
                    _ctrl.roccWrite(layout.regfileAddr(reg), val);
                advanceTo(done);
            }
            bd.commUpdate += _eq.curTick() - upd_t0;
        }
    } else {
        // Full recompile + full q_set each round, as a system without
        // communication instructions would be forced to do.
        const sim::Tick compile_t =
            _cfg.host.timeFor(_compiler.initialCompileCycles(image));
        bd.host += compile_t;
        bd.hostBusy += compile_t;
        advanceTo(start + compile_t);

        // Apply the updates functionally so SLT contents stay honest.
        for (const auto &[reg, val] : round.updates)
            _ctrl.roccWrite(layout.regfileAddr(reg), val);

        const sim::Tick set_t0 = _eq.curTick();
        auto remaining =
            std::make_shared<std::uint32_t>(image.numQubits);
        std::uint64_t host_off = 0;
        for (std::uint32_t q = 0; q < image.numQubits; ++q) {
            _ctrl.dmaSetProgram(
                _cfg.hostProgramBase + host_off, q, image.perQubit[q],
                [remaining](sim::Tick) { --(*remaining); });
            host_off += image.perQubit[q].size() *
                _ctrl.config().programEntryHostBytes;
        }
        drain();
        bd.commSet += _eq.curTick() - set_t0;
    }

    // ---- q_gen of whatever is stale.
    const sim::Tick gen_t0 = _eq.curTick();
    auto work = (sw.compile != CompileMode::FullRecompile)
        ? _ctrl.staleProgramEntries()
        : std::vector<std::uint64_t>{};
    controller::PipelineResult pres;
    auto on_gen = [&pres](const controller::PipelineResult &r,
                          sim::Tick) { pres = r; };
    if (sw.compile != CompileMode::FullRecompile)
        _ctrl.generate(std::move(work), on_gen);
    else
        _ctrl.generateAll(on_gen);
    drain();
    bd.pulseGen += _eq.curTick() - gen_t0;

    // ---- q_run: shots with scheduled transmission (Algorithm 1).
    const sim::Tick run_start = _eq.curTick();
    const std::uint32_t n = layout.numQubits;
    const std::uint64_t shots = round.shots;
    const std::uint32_t words_per_shot = (n + 63) / 64;
    const std::uint64_t bus_width =
        8ull * _ctrl.config().dmaChunkBytes; // bits per chunk
    const std::uint64_t K = _cfg.batchIntervalOverride
        ? _cfg.batchIntervalOverride
        : ((sw.transmission == TransmissionPolicy::Batched)
               ? batchInterval(bus_width, n)
               : 1);
    const sim::Tick barrier_cycle = _ctrl.clockPeriod();

    auto last_put_done = std::make_shared<sim::Tick>(run_start);
    auto put_latency_sum = std::make_shared<sim::Tick>(0);

    sim::Tick host_free = _eq.curTick();
    std::uint64_t batch_shots = 0;
    std::uint32_t entry = 0;
    std::uint64_t batch_first_entry = 0;
    std::uint64_t host_addr = _cfg.hostMeasureBase;

    for (std::uint64_t s = 0; s < shots; ++s) {
        const sim::Tick t_shot = run_start + (s + 1) * shot_duration;
        // Functional readout into .measure.
        const std::uint64_t bits =
            s < round.shotData.size() ? round.shotData[s] : 0;
        for (std::uint32_t w = 0; w < words_per_shot; ++w) {
            _ctrl.recordMeasurement(
                entry % layout.measureEntries, w == 0 ? bits : 0);
            ++entry;
        }
        ++batch_shots;

        if (batch_shots == K || s + 1 == shots) {
            // Per-PUT ADI crossing: with an injector attached each
            // batch draws its own jitter; otherwise this is the
            // constant interface latency.
            const sim::Tick put_time =
                t_shot + _ctrl.adiInputLatency();
            const auto first = static_cast<std::uint32_t>(
                batch_first_entry % layout.measureEntries);
            const auto count = static_cast<std::uint32_t>(
                batch_shots * words_per_shot);
            const auto addr = host_addr;
            _eq.scheduleLambda(put_time,
                [this, addr, first, count, last_put_done,
                 put_latency_sum, put_time] {
                    _ctrl.dmaAcquire(addr, first, count,
                        [last_put_done, put_latency_sum,
                         put_time](sim::Tick done) {
                            *last_put_done =
                                std::max(*last_put_done, done);
                            *put_latency_sum += done - put_time;
                        });
                },
                "q_run batch PUT");

            if (sw.sync == SyncPolicy::FineGrained) {
                // The host polls the barrier (1 cycle) and processes
                // the batch as soon as the PUT has left on the bus,
                // overlapping the remaining quantum shots.
                const sim::Tick ready =
                    std::max(host_free, put_time + barrier_cycle);
                host_free = ready + _cfg.host.timeFor(
                    static_cast<double>(batch_shots) *
                    round.postOpsPerShot);
            }

            host_addr += std::uint64_t(count) * 8;
            batch_first_entry += count;
            batch_shots = 0;
        }
    }

    const sim::Tick quantum_end = run_start + shots * shot_duration;
    bd.quantum += shots * shot_duration;

    drain();
    const sim::Tick post_ops_all = _cfg.host.timeFor(
        static_cast<double>(shots) * round.postOpsPerShot);

    sim::Tick round_end;
    if (sw.sync == SyncPolicy::Fence) {
        // FENCE #1: host stalls until the quantum program and every
        // transmission retire, then post-processes everything.
        const sim::Tick fence1 = std::max(quantum_end, *last_put_done);
        bd.commAcquire += *put_latency_sum;
        bd.host += post_ops_all;
        bd.hostBusy += post_ops_all;
        round_end = fence1 + post_ops_all;
    } else {
        // Fine-grained: only the non-overlapped transmission tail is
        // exposed on the critical path.
        bd.commAcquire += *last_put_done > quantum_end
            ? *last_put_done - quantum_end : 0;
        bd.commAcquire += barrier_cycle;
        bd.hostBusy += post_ops_all;
        // Visible host time: post-processing overflow past the end of
        // quantum execution (the rest hides behind the shots).
        if (host_free > quantum_end)
            bd.host += host_free - quantum_end;
        round_end = std::max({quantum_end, host_free, *last_put_done});
    }

    // ---- Optimizer step.
    const sim::Tick opt_t = _cfg.host.timeFor(round.optimizerOps);
    bd.host += opt_t;
    bd.hostBusy += opt_t;
    round_end += opt_t;
    advanceTo(round_end);

    bd.comm = bd.commSet + bd.commUpdate + bd.commAcquire;
    bd.wall = _eq.curTick() - start;
    observeBreakdown("round", bd, start);
    return bd;
}

ExecutionResult
QtenonExecutor::execute(const VqaTrace &trace, sim::Tick shot_duration)
{
    ExecutionResult res;
    res.setup = installProgram(trace.image);
    res.perRound.reserve(trace.rounds.size());
    for (const auto &r : trace.rounds) {
        res.perRound.push_back(
            executeRound(r, trace.image, shot_duration));
        res.rounds += res.perRound.back();
    }
    return res;
}

} // namespace qtenon::runtime
