/**
 * @file
 * The two software policies the paper ablates (Sec. 6.2/6.3,
 * Fig. 16): the synchronization method and the measurement
 * transmission schedule, plus the compilation mode.
 */

#ifndef QTENON_RUNTIME_POLICIES_HH
#define QTENON_RUNTIME_POLICIES_HH

#include <algorithm>
#include <cstdint>

namespace qtenon::runtime {

/** How host reads are ordered against controller writes. */
enum class SyncPolicy {
    /**
     * RISC-V default: FENCE serializes the host against all pending
     * quantum operations (Fig. 9a).
     */
    Fence,
    /**
     * Qtenon: soft memory barrier queried non-blockingly over RoCC,
     * letting post-processing overlap q_run (Fig. 9b).
     */
    FineGrained,
};

/** How measurement results cross the system bus. */
enum class TransmissionPolicy {
    /** One TileLink PUT per shot. */
    Immediate,
    /** Algorithm 1: batch K = floor(B/N) shots per PUT. */
    Batched,
};

/** How the quantum program reaches the controller each round. */
enum class CompileMode {
    /** Recompile + q_set the full program every round. */
    FullRecompile,
    /** Dynamic incremental compilation: q_update changed params. */
    Incremental,
};

/** Algorithm 1, line 1: the batched-transmission interval. */
constexpr std::uint64_t
batchInterval(std::uint64_t bus_width_bits, std::uint64_t num_qubits)
{
    return std::max<std::uint64_t>(1, bus_width_bits / num_qubits);
}

/** The full software configuration of a Qtenon run. */
struct SoftwareConfig {
    SyncPolicy sync = SyncPolicy::FineGrained;
    TransmissionPolicy transmission = TransmissionPolicy::Batched;
    CompileMode compile = CompileMode::Incremental;

    /** The paper's "Qtenon w/o software" hardware-only configuration. */
    static SoftwareConfig
    hardwareOnly()
    {
        return SoftwareConfig{SyncPolicy::Fence,
                              TransmissionPolicy::Immediate,
                              CompileMode::FullRecompile};
    }

    /** The full Qtenon software stack. */
    static SoftwareConfig
    full()
    {
        return SoftwareConfig{};
    }
};

} // namespace qtenon::runtime

#endif // QTENON_RUNTIME_POLICIES_HH
