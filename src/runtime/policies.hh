/**
 * @file
 * The two software policies the paper ablates (Sec. 6.2/6.3,
 * Fig. 16): the synchronization method and the measurement
 * transmission schedule, plus the compilation mode.
 */

#ifndef QTENON_RUNTIME_POLICIES_HH
#define QTENON_RUNTIME_POLICIES_HH

#include <algorithm>
#include <cstdint>
#include <string_view>

namespace qtenon::runtime {

/** How host reads are ordered against controller writes. */
enum class SyncPolicy {
    /**
     * RISC-V default: FENCE serializes the host against all pending
     * quantum operations (Fig. 9a).
     */
    Fence,
    /**
     * Qtenon: soft memory barrier queried non-blockingly over RoCC,
     * letting post-processing overlap q_run (Fig. 9b).
     */
    FineGrained,
};

/** How measurement results cross the system bus. */
enum class TransmissionPolicy {
    /** One TileLink PUT per shot. */
    Immediate,
    /** Algorithm 1: batch K = floor(B/N) shots per PUT. */
    Batched,
};

/** How the quantum program reaches the controller each round. */
enum class CompileMode {
    /** Recompile + q_set the full program every round. */
    FullRecompile,
    /** Dynamic incremental compilation: q_update changed params. */
    Incremental,
    /**
     * Incremental, with the initial structural compile served from
     * the content-addressed compile cache (isa/pass/compile_cache):
     * install charges only the front-end fixed cost plus a regfile
     * refill instead of the per-entry emit. Rounds behave exactly
     * like Incremental. An explicit mode — never inferred from
     * runtime cache state — so modeled time stays a pure function
     * of the configuration.
     */
    CachedIncremental,
};

/** Stable text name of @p m (JSON artifacts, CLI flags). */
constexpr const char *
compileModeName(CompileMode m)
{
    switch (m) {
      case CompileMode::FullRecompile:
        return "full-recompile";
      case CompileMode::Incremental:
        return "incremental";
      case CompileMode::CachedIncremental:
        return "cached-incremental";
    }
    return "incremental";
}

/** Inverse of compileModeName; @p ok reports whether @p s parsed. */
inline CompileMode
compileModeFromName(std::string_view s, bool *ok = nullptr)
{
    if (ok)
        *ok = true;
    if (s == "full-recompile")
        return CompileMode::FullRecompile;
    if (s == "incremental")
        return CompileMode::Incremental;
    if (s == "cached-incremental")
        return CompileMode::CachedIncremental;
    if (ok)
        *ok = false;
    return CompileMode::Incremental;
}

/** Algorithm 1, line 1: the batched-transmission interval. */
constexpr std::uint64_t
batchInterval(std::uint64_t bus_width_bits, std::uint64_t num_qubits)
{
    return std::max<std::uint64_t>(1, bus_width_bits / num_qubits);
}

/** The full software configuration of a Qtenon run. */
struct SoftwareConfig {
    SyncPolicy sync = SyncPolicy::FineGrained;
    TransmissionPolicy transmission = TransmissionPolicy::Batched;
    CompileMode compile = CompileMode::Incremental;
    /**
     * Issue regfile traffic in wave-granular vector form (q_update.v
     * / q_gen.v, `--isa-vector`): the executor groups each round's
     * updates by the image's waves and delivers one RoCC transfer
     * per touched wave. Requires an image compiled with
     * PipelineConfig::vectorIsa; off (default) keeps the byte-stable
     * scalar instruction stream.
     */
    bool vectorIsa = false;

    /** The paper's "Qtenon w/o software" hardware-only configuration. */
    static SoftwareConfig
    hardwareOnly()
    {
        return SoftwareConfig{SyncPolicy::Fence,
                              TransmissionPolicy::Immediate,
                              CompileMode::FullRecompile};
    }

    /** The full Qtenon software stack. */
    static SoftwareConfig
    full()
    {
        return SoftwareConfig{};
    }
};

} // namespace qtenon::runtime

#endif // QTENON_RUNTIME_POLICIES_HH
