/**
 * @file
 * The Qtenon host runtime: executes a VQA trace against the modeled
 * tightly-coupled system, round by round, issuing the five ISA
 * operations to the controller and accounting the four-way time
 * breakdown. The software policies (sync method, transmission
 * schedule, compile mode) are pluggable so Fig. 13 and Fig. 16 can
 * ablate them.
 */

#ifndef QTENON_RUNTIME_EXECUTOR_HH
#define QTENON_RUNTIME_EXECUTOR_HH

#include <cstdint>

#include "breakdown.hh"
#include "controller/controller.hh"
#include "host_core.hh"
#include "isa/compiler.hh"
#include "policies.hh"
#include "quantum/timing.hh"
#include "trace.hh"

namespace qtenon::runtime {

/** Executor knobs. */
struct ExecutorConfig {
    SoftwareConfig software;
    HostCoreModel host = HostCoreModel::rocket();
    quantum::GateTiming gateTiming;
    /**
     * Ablation override for the transmission interval K: 0 follows
     * the configured policy (Algorithm 1 or per-shot), any other
     * value forces that many shots per TileLink PUT.
     */
    std::uint64_t batchIntervalOverride = 0;
    /** Host-memory base where measurement batches land. */
    std::uint64_t hostMeasureBase = 0x1000'0000ull;
    /** Host-memory base the program image is staged at for q_set. */
    std::uint64_t hostProgramBase = 0x2000'0000ull;
};

/** Per-round + aggregate results of a trace replay. */
struct ExecutionResult {
    TimeBreakdown setup;
    TimeBreakdown rounds;
    /** One breakdown per executed round (CSV-able, report.hh). */
    std::vector<TimeBreakdown> perRound;

    TimeBreakdown
    total() const
    {
        TimeBreakdown t = setup;
        t += rounds;
        return t;
    }
};

/** The runtime. */
class QtenonExecutor
{
  public:
    QtenonExecutor(sim::EventQueue &eq,
                   controller::QuantumController &ctrl,
                   isa::QtenonCompiler compiler, ExecutorConfig cfg);

    const ExecutorConfig &config() const { return _cfg; }

    /**
     * Install @p image: host compile + q_set of every qubit chunk +
     * regfile initialization + the initial full q_gen.
     */
    TimeBreakdown installProgram(const isa::ProgramImage &image);

    /**
     * Execute one evaluation round of @p trace: updates, q_gen,
     * q_run with the configured transmission schedule, host
     * post-processing under the configured sync policy, optimizer
     * step.
     *
     * @param shot_duration one shot's wall time on the quantum chip.
     */
    TimeBreakdown executeRound(const RoundRecord &round,
                               const isa::ProgramImage &image,
                               sim::Tick shot_duration);

    /** Replay an entire trace (install + all rounds). */
    ExecutionResult execute(const VqaTrace &trace,
                            sim::Tick shot_duration);

  private:
    /** Advance simulated time to @p t, draining due events. */
    void advanceTo(sim::Tick t);

    /** Drain every pending event. */
    void drain();

    /** Record @p bd into the obs breakdown histograms + a span. */
    void observeBreakdown(const char *what, const TimeBreakdown &bd,
                          sim::Tick start);

    sim::EventQueue &_eq;
    controller::QuantumController &_ctrl;
    isa::QtenonCompiler _compiler;
    ExecutorConfig _cfg;
    bool _programInstalled = false;
    /** Lazily allocated trace-sink process id (0 = none yet). */
    std::uint32_t _tracePid = 0;
};

} // namespace qtenon::runtime

#endif // QTENON_RUNTIME_EXECUTOR_HH
