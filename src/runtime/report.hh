/**
 * @file
 * Machine-readable reporting: CSV emission of per-round time
 * breakdowns so external tooling (plots, regressions) can consume
 * experiment results without scraping bench stdout.
 */

#ifndef QTENON_RUNTIME_REPORT_HH
#define QTENON_RUNTIME_REPORT_HH

#include <ostream>
#include <vector>

#include "breakdown.hh"

namespace qtenon::runtime {

/** Write a header + one CSV row per breakdown (times in ns). */
inline void
writeBreakdownCsv(std::ostream &os,
                  const std::vector<TimeBreakdown> &rows)
{
    os << "round,wall_ns,quantum_ns,pulse_ns,comm_ns,host_ns,"
          "host_busy_ns,comm_set_ns,comm_update_ns,comm_acquire_ns\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &b = rows[i];
        os << i << ',' << sim::ticksToNs(b.wall) << ','
           << sim::ticksToNs(b.quantum) << ','
           << sim::ticksToNs(b.pulseGen) << ','
           << sim::ticksToNs(b.comm) << ',' << sim::ticksToNs(b.host)
           << ',' << sim::ticksToNs(b.hostBusy) << ','
           << sim::ticksToNs(b.commSet) << ','
           << sim::ticksToNs(b.commUpdate) << ','
           << sim::ticksToNs(b.commAcquire) << '\n';
    }
}

} // namespace qtenon::runtime

#endif // QTENON_RUNTIME_REPORT_HH
