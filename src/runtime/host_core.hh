/**
 * @file
 * Host-core timing models: the Rocket and BOOM-Large RISC-V cores of
 * Table 4 and the i9-14900K class host of the baseline.
 *
 * Host-side costs in these workloads are dominated by
 * compile/update/cost-evaluation loops whose instruction counts the
 * workload layer models explicitly, so a frequency x IPC abstraction
 * captures the relevant first-order difference between cores. (The
 * paper itself observes that Rocket and BOOM host times are nearly
 * identical here.)
 */

#ifndef QTENON_RUNTIME_HOST_CORE_HH
#define QTENON_RUNTIME_HOST_CORE_HH

#include <algorithm>
#include <string>

#include "sim/types.hh"

namespace qtenon::runtime {

/** A simple ops/second host-core model. */
struct HostCoreModel {
    std::string name = "rocket";
    double freqHz = 1e9;
    double ipc = 1.0;
    /**
     * Number of host cores sharing the (embarrassingly parallel)
     * post-processing work. Sec. 7.5 notes host computation "could
     * be further reduced by leveraging more RISC-V processor cores".
     */
    std::uint32_t cores = 1;

    /** Time to retire @p ops dynamic operations. */
    sim::Tick
    timeFor(double ops) const
    {
        const double seconds =
            ops / (ipc * freqHz * std::max(1u, cores));
        return static_cast<sim::Tick>(seconds * sim::sTicks);
    }

    /** Rocket in-order core @1 GHz (Table 4). */
    static HostCoreModel
    rocket()
    {
        return HostCoreModel{"rocket", 1e9, 0.9};
    }

    /** BOOM-Large out-of-order core @1 GHz (Table 4). */
    static HostCoreModel
    boomLarge()
    {
        return HostCoreModel{"boom-l", 1e9, 1.4};
    }

    /** The baseline's i9-14900K-class x86 host. */
    static HostCoreModel
    i9()
    {
        return HostCoreModel{"i9-14900k", 5.5e9, 4.0};
    }
};

} // namespace qtenon::runtime

#endif // QTENON_RUNTIME_HOST_CORE_HH
