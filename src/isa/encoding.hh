/**
 * @file
 * Qtenon's RISC-V ISA extension (paper Sec. 6.1, Table 3, Fig. 8).
 *
 * Five instructions ride the RoCC custom-0 opcode:
 *
 *   data communication   q_update, q_set, q_acquire
 *   computation          q_gen, q_run
 *
 * The 32-bit instruction encodes register designators; the Fig. 8(b)
 * *data formats* describe the operand register contents:
 *
 *   q_update   rs1 = QAddress[38:0],      rs2 = parameter
 *   q_set      rs1 = classical address,   rs2 = {len[63:39], QAddr[38:0]}
 *   q_acquire  rs1 = classical address,   rs2 = {len[63:39], QAddr[38:0]}
 */

#ifndef QTENON_ISA_ENCODING_HH
#define QTENON_ISA_ENCODING_HH

#include <cstdint>
#include <string>

namespace qtenon::isa {

/** The Qtenon operations (funct7 values). The five scalar forms are
 *  the paper's Table 3; the two vector forms carry one instruction
 *  per *wave* of qubits (mask/stride operands, below) and are only
 *  emitted when the vector-packing pass is enabled (`--isa-vector`). */
enum class Opcode : std::uint8_t {
    QUpdate = 0x01,
    QSet = 0x02,
    QAcquire = 0x03,
    /** Vector q_update: rs1 = {count, stride, base QAddress}, rs2 =
     *  classical address of the packed element vector. */
    QUpdateV = 0x05,
    QGen = 0x10,
    QRun = 0x11,
    /** Vector q_gen: rs1 = wave base qubit, rs2 = 64-bit lane mask. */
    QGenV = 0x12,
};

/** Mnemonic for an opcode. */
std::string opcodeName(Opcode op);

/** The RoCC custom-0 major opcode. */
constexpr std::uint32_t roccCustom0 = 0x0B;

/** A decoded RoCC instruction (Fig. 8a field layout). */
struct RoccInstruction {
    Opcode funct7 = Opcode::QUpdate;
    std::uint8_t rs2 = 0;
    std::uint8_t rs1 = 0;
    bool xd = false;
    bool xs1 = false;
    bool xs2 = false;
    std::uint8_t rd = 0;

    /** Encode into the 32-bit RoCC format. */
    std::uint32_t encode() const;

    /** Decode from the 32-bit RoCC format. */
    static RoccInstruction decode(std::uint32_t word);

    bool operator==(const RoccInstruction &) const = default;
};

/** QAddress field width within rs2 (paper: lower 39 bits). */
constexpr std::uint32_t qaddrFieldBits = 39;

/** Build the {length, QAddress} rs2 register value. */
constexpr std::uint64_t
packLengthQaddr(std::uint64_t length, std::uint64_t qaddr)
{
    return (length << qaddrFieldBits) |
        (qaddr & ((std::uint64_t(1) << qaddrFieldBits) - 1));
}

/** Split an rs2 register value into length and QAddress. */
constexpr std::uint64_t
lengthOf(std::uint64_t rs2)
{
    return rs2 >> qaddrFieldBits;
}

constexpr std::uint64_t
qaddrOf(std::uint64_t rs2)
{
    return rs2 & ((std::uint64_t(1) << qaddrFieldBits) - 1);
}

/**
 * @name Vector operand encodings
 *
 * q_update.v packs its whole wave descriptor into rs1:
 *
 *   rs1 = {count[63:47], stride[46:39], base QAddress[38:0]}
 *
 * so a wave of up to 2^17 - 1 elements, strided by 1..255 QAddresses,
 * is one instruction; rs2 carries the classical address of the packed
 * element vector (RISC-V V-extension framing: element values travel
 * through the vector register file, not the scalar operand).
 *
 * q_gen.v uses rs1 = wave base qubit and rs2 = a 64-bit lane mask
 * relative to that base, so one instruction regenerates pulses for an
 * arbitrary subset of a 64-qubit wave.
 */
/// @{

/** Stride field width within the q_update.v rs1 value. */
constexpr std::uint32_t vecStrideBits = 8;
/** Count field width within the q_update.v rs1 value. */
constexpr std::uint32_t vecCountBits = 17;
/** Widest wave one q_gen.v lane mask can cover. */
constexpr std::uint32_t vecMaxLanes = 64;
/** Largest element count one q_update.v can carry. */
constexpr std::uint32_t vecMaxCount = (1u << vecCountBits) - 1;
/** Largest stride one q_update.v can carry (0 is reserved). */
constexpr std::uint32_t vecMaxStride = (1u << vecStrideBits) - 1;

/** Build the {count, stride, base} q_update.v rs1 register value. */
constexpr std::uint64_t
packVecStride(std::uint64_t base, std::uint32_t stride,
              std::uint32_t count)
{
    return (std::uint64_t(count) << (qaddrFieldBits + vecStrideBits)) |
        (std::uint64_t(stride & vecMaxStride) << qaddrFieldBits) |
        (base & ((std::uint64_t(1) << qaddrFieldBits) - 1));
}

/** Base QAddress of a q_update.v rs1 value. */
constexpr std::uint64_t
vecBaseOf(std::uint64_t rs1)
{
    return rs1 & ((std::uint64_t(1) << qaddrFieldBits) - 1);
}

/** Stride of a q_update.v rs1 value. */
constexpr std::uint32_t
vecStrideOf(std::uint64_t rs1)
{
    return static_cast<std::uint32_t>(
        (rs1 >> qaddrFieldBits) & vecMaxStride);
}

/** Element count of a q_update.v rs1 value. */
constexpr std::uint32_t
vecCountOf(std::uint64_t rs1)
{
    return static_cast<std::uint32_t>(
        (rs1 >> (qaddrFieldBits + vecStrideBits)) &
        ((std::uint64_t(1) << vecCountBits) - 1));
}

/** Lane mask with @p count consecutive lanes set from @p first. */
constexpr std::uint64_t
waveMask(std::uint32_t first, std::uint32_t count)
{
    const std::uint64_t run = count >= vecMaxLanes
        ? ~std::uint64_t(0)
        : ((std::uint64_t(1) << count) - 1);
    return run << first;
}
/// @}

} // namespace qtenon::isa

#endif // QTENON_ISA_ENCODING_HH
