/**
 * @file
 * Qtenon's RISC-V ISA extension (paper Sec. 6.1, Table 3, Fig. 8).
 *
 * Five instructions ride the RoCC custom-0 opcode:
 *
 *   data communication   q_update, q_set, q_acquire
 *   computation          q_gen, q_run
 *
 * The 32-bit instruction encodes register designators; the Fig. 8(b)
 * *data formats* describe the operand register contents:
 *
 *   q_update   rs1 = QAddress[38:0],      rs2 = parameter
 *   q_set      rs1 = classical address,   rs2 = {len[63:39], QAddr[38:0]}
 *   q_acquire  rs1 = classical address,   rs2 = {len[63:39], QAddr[38:0]}
 */

#ifndef QTENON_ISA_ENCODING_HH
#define QTENON_ISA_ENCODING_HH

#include <cstdint>
#include <string>

namespace qtenon::isa {

/** The five Qtenon operations (funct7 values). */
enum class Opcode : std::uint8_t {
    QUpdate = 0x01,
    QSet = 0x02,
    QAcquire = 0x03,
    QGen = 0x10,
    QRun = 0x11,
};

/** Mnemonic for an opcode. */
std::string opcodeName(Opcode op);

/** The RoCC custom-0 major opcode. */
constexpr std::uint32_t roccCustom0 = 0x0B;

/** A decoded RoCC instruction (Fig. 8a field layout). */
struct RoccInstruction {
    Opcode funct7 = Opcode::QUpdate;
    std::uint8_t rs2 = 0;
    std::uint8_t rs1 = 0;
    bool xd = false;
    bool xs1 = false;
    bool xs2 = false;
    std::uint8_t rd = 0;

    /** Encode into the 32-bit RoCC format. */
    std::uint32_t encode() const;

    /** Decode from the 32-bit RoCC format. */
    static RoccInstruction decode(std::uint32_t word);

    bool operator==(const RoccInstruction &) const = default;
};

/** QAddress field width within rs2 (paper: lower 39 bits). */
constexpr std::uint32_t qaddrFieldBits = 39;

/** Build the {length, QAddress} rs2 register value. */
constexpr std::uint64_t
packLengthQaddr(std::uint64_t length, std::uint64_t qaddr)
{
    return (length << qaddrFieldBits) |
        (qaddr & ((std::uint64_t(1) << qaddrFieldBits) - 1));
}

/** Split an rs2 register value into length and QAddress. */
constexpr std::uint64_t
lengthOf(std::uint64_t rs2)
{
    return rs2 >> qaddrFieldBits;
}

constexpr std::uint64_t
qaddrOf(std::uint64_t rs2)
{
    return rs2 & ((std::uint64_t(1) << qaddrFieldBits) - 1);
}

} // namespace qtenon::isa

#endif // QTENON_ISA_ENCODING_HH
