/**
 * @file
 * The compiled Qtenon program image: per-qubit .program entry lists,
 * the regfile assignment for symbolic parameters, and the
 * regfile -> program-entry links the controller uses to invalidate
 * pulses on q_update.
 */

#ifndef QTENON_ISA_PROGRAM_HH
#define QTENON_ISA_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "controller/program_entry.hh"

namespace qtenon::isa {

/** One regfile -> program-entry dependency. */
struct RegfileLink {
    std::uint32_t reg;
    std::uint32_t qubit;
    std::uint32_t entry;
};

/**
 * One q_update.v wave over the regfile: `count` consecutive slots
 * (stride 1 in QAddress space) starting at `baseReg`. Produced by
 * the vector-packing pass; empty on scalar-compiled images.
 */
struct UpdateWave {
    std::uint32_t baseReg = 0;
    std::uint32_t stride = 1;
    std::uint32_t count = 0;

    bool operator==(const UpdateWave &) const = default;

    /** Whether regfile slot @p reg falls inside this wave. */
    bool
    contains(std::uint32_t reg) const
    {
        return reg >= baseReg && reg < baseReg + count * stride &&
            (reg - baseReg) % stride == 0;
    }
};

/**
 * One q_gen.v wave over the qubits: a lane mask relative to
 * `baseQubit` (wave formation rule: qubits are chunked into
 * consecutive 64-lane waves).
 */
struct GenWave {
    std::uint32_t baseQubit = 0;
    std::uint64_t laneMask = 0;

    bool operator==(const GenWave &) const = default;
};

/** The compiled image q_set ships to the controller. */
struct ProgramImage {
    std::uint32_t numQubits = 0;

    /** .program contents per qubit. */
    std::vector<std::vector<controller::ProgramEntry>> perQubit;

    /** Parameter index -> regfile slot (one slot per parameter). */
    std::vector<std::uint32_t> paramToReg;

    /** Initial regfile contents (encoded angles), indexed by slot. */
    std::vector<std::uint32_t> regfileInit;

    /** All regfile dependencies. */
    std::vector<RegfileLink> links;

    /** q_update.v waves over the regfile (vector-packing pass only;
     *  empty on the byte-stable scalar lowering). */
    std::vector<UpdateWave> updateWaves;

    /** q_gen.v waves over the qubits (vector-packing pass only). */
    std::vector<GenWave> genWaves;

    /** Whether the vector-packing pass annotated this image. */
    bool hasWaves() const { return !updateWaves.empty(); }

    /** The update wave containing regfile slot @p reg, or ~0. */
    std::uint32_t
    waveOfReg(std::uint32_t reg) const
    {
        for (std::size_t w = 0; w < updateWaves.size(); ++w)
            if (updateWaves[w].contains(reg))
                return static_cast<std::uint32_t>(w);
        return ~std::uint32_t(0);
    }

    /** Total .program entries across qubits. */
    std::uint64_t
    totalEntries() const
    {
        std::uint64_t n = 0;
        for (const auto &v : perQubit)
            n += v.size();
        return n;
    }

    /** Longest per-qubit entry list. */
    std::uint32_t
    maxChunkEntries() const
    {
        std::uint32_t m = 0;
        for (const auto &v : perQubit)
            m = std::max<std::uint32_t>(
                m, static_cast<std::uint32_t>(v.size()));
        return m;
    }
};

} // namespace qtenon::isa

#endif // QTENON_ISA_PROGRAM_HH
