/**
 * @file
 * The compiled Qtenon program image: per-qubit .program entry lists,
 * the regfile assignment for symbolic parameters, and the
 * regfile -> program-entry links the controller uses to invalidate
 * pulses on q_update.
 */

#ifndef QTENON_ISA_PROGRAM_HH
#define QTENON_ISA_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "controller/program_entry.hh"

namespace qtenon::isa {

/** One regfile -> program-entry dependency. */
struct RegfileLink {
    std::uint32_t reg;
    std::uint32_t qubit;
    std::uint32_t entry;
};

/** The compiled image q_set ships to the controller. */
struct ProgramImage {
    std::uint32_t numQubits = 0;

    /** .program contents per qubit. */
    std::vector<std::vector<controller::ProgramEntry>> perQubit;

    /** Parameter index -> regfile slot (one slot per parameter). */
    std::vector<std::uint32_t> paramToReg;

    /** Initial regfile contents (encoded angles), indexed by slot. */
    std::vector<std::uint32_t> regfileInit;

    /** All regfile dependencies. */
    std::vector<RegfileLink> links;

    /** Total .program entries across qubits. */
    std::uint64_t
    totalEntries() const
    {
        std::uint64_t n = 0;
        for (const auto &v : perQubit)
            n += v.size();
        return n;
    }

    /** Longest per-qubit entry list. */
    std::uint32_t
    maxChunkEntries() const
    {
        std::uint32_t m = 0;
        for (const auto &v : perQubit)
            m = std::max<std::uint32_t>(
                m, static_cast<std::uint32_t>(v.size()));
        return m;
    }
};

} // namespace qtenon::isa

#endif // QTENON_ISA_PROGRAM_HH
