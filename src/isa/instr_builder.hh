/**
 * @file
 * The typed instruction-construction surface of the Qtenon ISA.
 *
 * Every RoCC instruction the repo emits — assembler streams, the
 * compiler's update plans, the pass pipeline's program entries —
 * goes through `InstrBuilder`, replacing the raw-field constructors
 * that used to be duplicated across assembler.cc, compiler.cc, and
 * the passes. Operands are wrapped in single-purpose types (QAddr,
 * CAddr, WaveMask) so mixing up a quantum and a classical address is
 * a compile error rather than a silently wrong stream, and the
 * vector forms (q_update.v / q_gen.v) validate their stride/count/
 * lane ranges at construction time.
 */

#ifndef QTENON_ISA_INSTR_BUILDER_HH
#define QTENON_ISA_INSTR_BUILDER_HH

#include <cstdint>

#include "controller/program_entry.hh"
#include "encoding.hh"

namespace qtenon::isa {

/** A 39-bit quantum (QCC) address operand. */
struct QAddr {
    std::uint64_t value = 0;

    constexpr explicit QAddr(std::uint64_t v) : value(v) {}
};

/** A classical (host memory) address operand. */
struct CAddr {
    std::uint64_t value = 0;

    constexpr explicit CAddr(std::uint64_t v) : value(v) {}
};

/** A q_gen.v lane mask relative to the wave base qubit. */
struct WaveMask {
    std::uint64_t bits = 0;

    constexpr explicit WaveMask(std::uint64_t b) : bits(b) {}

    /** Mask of @p count consecutive lanes starting at @p first. */
    static WaveMask
    span(std::uint32_t first, std::uint32_t count)
    {
        return WaveMask(waveMask(first, count));
    }
};

/**
 * One emitted instruction with its operand register *values* (the
 * surrounding integer code that loads them is not modeled).
 */
struct AssembledOp {
    RoccInstruction instruction;
    std::uint64_t rs1Value = 0;
    std::uint64_t rs2Value = 0;
};

/** Register conventions used by the emitted streams. */
struct AssemblerAbi {
    std::uint8_t addrReg = 10;  // x10: classical address
    std::uint8_t lenReg = 11;   // x11: {length, QAddress}
    std::uint8_t qaddrReg = 12; // x12: QAddress
    std::uint8_t dataReg = 13;  // x13: data / parameter
    std::uint8_t shotReg = 14;  // x14: shot count
};

/** Builds every scalar and vector Qtenon instruction form. */
class InstrBuilder
{
  public:
    explicit InstrBuilder(AssemblerAbi abi = AssemblerAbi{})
        : _abi(abi)
    {}

    const AssemblerAbi &abi() const { return _abi; }

    /** @name Scalar forms (paper Table 3) */
    /// @{

    /** q_update: write @p data to regfile/program @p qaddr. */
    AssembledOp qUpdate(QAddr qaddr, std::uint64_t data) const;

    /** q_set: install @p entries program entries from @p src. */
    AssembledOp qSet(CAddr src, std::uint64_t entries,
                     QAddr dst) const;

    /** q_acquire: move @p entries .measure entries to @p dst. */
    AssembledOp qAcquire(CAddr dst, std::uint64_t entries,
                         QAddr src) const;

    /** q_gen: regenerate pulses for every stale entry. */
    AssembledOp qGen() const;

    /** q_run: fire @p shots quantum shots. */
    AssembledOp qRun(std::uint64_t shots) const;
    /// @}

    /** @name Vector forms (wave-granular, `--isa-vector`) */
    /// @{

    /**
     * q_update.v: one instruction delivering @p count elements to
     * QAddresses base, base + stride, ... The packed element vector
     * lives at classical address @p values. Fatal on stride 0,
     * stride/count/base outside their field widths.
     */
    AssembledOp qUpdateV(QAddr base, std::uint32_t stride,
                         std::uint32_t count, CAddr values) const;

    /**
     * q_gen.v: one instruction regenerating the wave of qubits
     * selected by @p lanes relative to @p base_qubit. Fatal on an
     * empty mask.
     */
    AssembledOp qGenV(std::uint32_t base_qubit, WaveMask lanes) const;
    /// @}

    /** @name Program-entry construction (pass pipeline) */
    /// @{

    /** Entry whose data is regfile slot @p reg (dynamic parameter). */
    static controller::ProgramEntry
    symbolicEntry(quantum::GateType t, std::uint32_t reg);

    /** Entry carrying the fixed-point encoding of @p angle. */
    static controller::ProgramEntry
    literalEntry(quantum::GateType t, double angle);

    /** The shared parameter codec (regfile values, update plans). */
    static std::uint32_t
    encodeParam(double angle)
    {
        return controller::ProgramEntry::encodeAngle(angle);
    }
    /// @}

  private:
    AssembledOp make(Opcode op, std::uint64_t rs1, std::uint64_t rs2,
                     bool uses_rs1, bool uses_rs2) const;

    AssemblerAbi _abi;
};

} // namespace qtenon::isa

#endif // QTENON_ISA_INSTR_BUILDER_HH
