#include "compiler.hh"

#include <algorithm>
#include <memory>

#include "instr_builder.hh"
#include "pass/edge_coloring.hh"
#include "pass/entry_packing.hh"
#include "pass/gate_fusion.hh"
#include "pass/slt_layout.hh"
#include "pass/swap_routing.hh"
#include "pass/vector_packing.hh"
#include "quantum/mapping.hh"
#include "shard/partition.hh"
#include "sim/logging.hh"

namespace qtenon::isa {

using controller::ProgramEntry;

std::string
PipelineConfig::canonicalText() const
{
    std::string out = "fuse=";
    out += fuseLiteralRotations ? '1' : '0';
    out += ";coupling=";
    if (!coupling) {
        out += "none";
    } else {
        out += "{n=" + std::to_string(coupling->numQubits()) + ";e=[";
        bool first = true;
        for (std::uint32_t a = 0; a < coupling->numQubits(); ++a) {
            auto higher = coupling->neighbors(a);
            std::sort(higher.begin(), higher.end());
            for (auto b : higher) {
                if (b <= a)
                    continue; // undirected: list each edge once
                if (!first)
                    out += ',';
                first = false;
                out += std::to_string(a) + "-" + std::to_string(b);
            }
        }
        out += "]}";
    }
    // A single shard lowers identically to no map, so only genuine
    // partitions extend the cache key (keeps historical keys stable).
    if (shardMap && !shardMap->isSingle())
        out += ";shard={" + shardMap->canonicalText() + "}";
    // Off adds nothing: historical scalar cache keys stay valid.
    if (vectorIsa)
        out += ";vector=1";
    return out;
}

pass::PassManager
QtenonCompiler::buildPipeline() const
{
    pass::PassManager pm;
    pm.add(std::make_unique<pass::GateFusion>(
        _pipe.fuseLiteralRotations));
    pm.add(std::make_unique<pass::SwapRouting>());
    pm.add(std::make_unique<pass::EdgeColoredScheduling>());
    pm.add(std::make_unique<pass::SltLayout>());
    pm.add(std::make_unique<pass::ProgramEntryPacking>());
    if (_pipe.vectorIsa)
        pm.add(std::make_unique<pass::VectorPacking>());
    return pm;
}

std::string
QtenonCompiler::pipelineDescription() const
{
    return buildPipeline().description();
}

ProgramImage
QtenonCompiler::compile(const quantum::QuantumCircuit &c) const
{
    pass::CompileContext ctx;
    ctx.circuit = c;
    ctx.coupling = _pipe.coupling;
    ctx.shardMap = _pipe.shardMap;
    buildPipeline().run(ctx);
    return std::move(ctx.image);
}

UpdatePlan
QtenonCompiler::planUpdates(const ProgramImage &image,
                            const std::vector<double> &old_params,
                            const std::vector<double> &new_params) const
{
    if (old_params.size() != new_params.size() ||
        new_params.size() != image.paramToReg.size()) {
        sim::panic("update plan parameter vectors disagree with image");
    }
    UpdatePlan plan;
    for (std::size_t p = 0; p < new_params.size(); ++p) {
        const auto old_code = InstrBuilder::encodeParam(old_params[p]);
        const auto new_code = InstrBuilder::encodeParam(new_params[p]);
        if (old_code != new_code)
            plan.emplace_back(image.paramToReg[p], new_code);
    }
    return plan;
}

double
QtenonCompiler::initialCompileCycles(const ProgramImage &image) const
{
    return _cost.fixedCycles +
        _cost.cyclesPerEntry * static_cast<double>(image.totalEntries());
}

double
QtenonCompiler::incrementalCycles(std::size_t num_updates) const
{
    return _cost.cyclesPerUpdate * static_cast<double>(num_updates);
}

double
QtenonCompiler::incrementalCyclesVector(std::size_t num_waves,
                                        std::size_t num_elements) const
{
    return _cost.cyclesPerVectorInstr * static_cast<double>(num_waves) +
        _cost.cyclesPerVectorElement *
        static_cast<double>(num_elements);
}

double
QtenonCompiler::cachedCompileCycles(const ProgramImage &image) const
{
    return _cost.cacheLookupCycles +
        _cost.cyclesPerUpdate *
        static_cast<double>(image.regfileInit.size());
}

InstructionCount
QtenonCompiler::countInstructions(const ProgramImage &image,
                                  std::uint64_t rounds,
                                  std::uint64_t updates_per_round,
                                  std::uint64_t acquires_per_round)
{
    InstructionCount n;
    // One q_set per qubit chunk to install the program once.
    n.qSet = image.numQubits;
    n.qUpdate = rounds * updates_per_round;
    n.qGen = rounds;
    n.qRun = rounds;
    n.qAcquire = rounds * acquires_per_round;
    return n;
}

InstructionCount
QtenonCompiler::countInstructionsVector(const ProgramImage &image,
                                        std::uint64_t rounds,
                                        std::uint64_t updates_per_round,
                                        std::uint64_t acquires_per_round)
{
    if (!image.hasWaves()) {
        return countInstructions(image, rounds, updates_per_round,
                                 acquires_per_round);
    }
    // Worst case: the round's updates spread across every wave, so
    // each round issues one q_update.v and one q_gen.v per wave
    // (capped by the update count when a round touches fewer waves
    // than exist).
    const std::uint64_t touched = std::min<std::uint64_t>(
        image.updateWaves.size(), updates_per_round);
    InstructionCount n;
    n.qSet = image.numQubits;
    n.qUpdateV = rounds * touched;
    n.qGenV = rounds * image.genWaves.size();
    n.qRun = rounds;
    n.qAcquire = rounds * acquires_per_round;
    return n;
}

} // namespace qtenon::isa
