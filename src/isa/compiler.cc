#include "compiler.hh"

#include "sim/logging.hh"

namespace qtenon::isa {

using controller::EntryStatus;
using controller::ProgramEntry;
using quantum::GateType;

ProgramImage
QtenonCompiler::compile(const quantum::QuantumCircuit &c) const
{
    ProgramImage img;
    img.numQubits = c.numQubits();
    img.perQubit.resize(c.numQubits());
    img.paramToReg.assign(c.numParameters(), ~std::uint32_t(0));

    // One regfile slot per symbolic parameter, allocated in parameter
    // order so the optimizer can address slots directly.
    for (std::uint32_t p = 0; p < c.numParameters(); ++p) {
        img.paramToReg[p] = p;
        img.regfileInit.push_back(
            ProgramEntry::encodeAngle(c.parameter(p)));
    }

    auto emit = [&](std::uint32_t qubit, const quantum::Gate &g) {
        ProgramEntry e;
        e.type = ProgramEntry::encodeType(g.type);
        e.status = EntryStatus::Invalid;
        if (quantum::isParameterized(g.type) && g.param.isSymbolic()) {
            e.regFlag = true;
            e.data = img.paramToReg[g.param.index];
            img.links.push_back(RegfileLink{
                e.data, qubit,
                static_cast<std::uint32_t>(img.perQubit[qubit].size())});
        } else {
            e.regFlag = false;
            e.data = ProgramEntry::encodeAngle(c.resolveAngle(g));
        }
        img.perQubit[qubit].push_back(e);
    };

    for (const auto &g : c.gates()) {
        // Two-qubit gates drive control pulses on both qubits.
        emit(g.qubit0, g);
        if (quantum::isTwoQubit(g.type))
            emit(g.qubit1, g);
    }
    return img;
}

UpdatePlan
QtenonCompiler::planUpdates(const ProgramImage &image,
                            const std::vector<double> &old_params,
                            const std::vector<double> &new_params) const
{
    if (old_params.size() != new_params.size() ||
        new_params.size() != image.paramToReg.size()) {
        sim::panic("update plan parameter vectors disagree with image");
    }
    UpdatePlan plan;
    for (std::size_t p = 0; p < new_params.size(); ++p) {
        const auto old_code = ProgramEntry::encodeAngle(old_params[p]);
        const auto new_code = ProgramEntry::encodeAngle(new_params[p]);
        if (old_code != new_code)
            plan.emplace_back(image.paramToReg[p], new_code);
    }
    return plan;
}

double
QtenonCompiler::initialCompileCycles(const ProgramImage &image) const
{
    return _cost.fixedCycles +
        _cost.cyclesPerEntry * static_cast<double>(image.totalEntries());
}

double
QtenonCompiler::incrementalCycles(std::size_t num_updates) const
{
    return _cost.cyclesPerUpdate * static_cast<double>(num_updates);
}

InstructionCount
QtenonCompiler::countInstructions(const ProgramImage &image,
                                  std::uint64_t rounds,
                                  std::uint64_t updates_per_round,
                                  std::uint64_t acquires_per_round)
{
    InstructionCount n;
    // One q_set per qubit chunk to install the program once.
    n.qSet = image.numQubits;
    n.qUpdate = rounds * updates_per_round;
    n.qGen = rounds;
    n.qRun = rounds;
    n.qAcquire = rounds * acquires_per_round;
    return n;
}

} // namespace qtenon::isa
