#include "gate_fusion.hh"

#include "obs/metrics.hh"

namespace qtenon::isa::pass {

using quantum::Gate;
using quantum::GateType;
using quantum::ParamRef;
using quantum::QuantumCircuit;

namespace {

bool
fusableRotation(const Gate &g)
{
    return (g.type == GateType::RX || g.type == GateType::RY ||
            g.type == GateType::RZ) &&
        !g.param.isSymbolic();
}

} // namespace

std::uint64_t
GateFusion::fuse(QuantumCircuit &c)
{
    constexpr std::size_t none = ~std::size_t(0);
    std::vector<Gate> out;
    out.reserve(c.numGates());
    /** Index in `out` of the last gate touching each qubit. */
    std::vector<std::size_t> last(c.numQubits(), none);
    std::uint64_t fused = 0;

    for (const auto &g : c.gates()) {
        if (fusableRotation(g) && last[g.qubit0] != none) {
            Gate &prev = out[last[g.qubit0]];
            if (prev.type == g.type && prev.qubit0 == g.qubit0 &&
                fusableRotation(prev)) {
                prev.param = ParamRef::literal(prev.param.value +
                                               g.param.value);
                ++fused;
                continue;
            }
        }
        const auto idx = out.size();
        out.push_back(g);
        last[g.qubit0] = idx;
        if (quantum::isTwoQubit(g.type))
            last[g.qubit1] = idx;
    }

    if (fused == 0)
        return 0;

    QuantumCircuit next(c.numQubits());
    for (std::uint32_t p = 0; p < c.numParameters(); ++p)
        next.addParameter(c.parameter(p), c.parameterName(p));
    for (const auto &g : out) {
        if (g.type == GateType::Measure)
            next.measure(g.qubit0);
        else if (quantum::isTwoQubit(g.type) &&
                 quantum::isParameterized(g.type))
            next.rotation2(g.type, g.qubit0, g.qubit1, g.param);
        else if (quantum::isTwoQubit(g.type))
            next.gate2(g.type, g.qubit0, g.qubit1);
        else if (quantum::isParameterized(g.type))
            next.rotation(g.type, g.qubit0, g.param);
        else
            next.gate(g.type, g.qubit0);
    }
    c = std::move(next);
    return fused;
}

void
GateFusion::run(CompileContext &ctx) const
{
    if (!_enabled)
        return;
    const auto fused = fuse(ctx.circuit);
    if (obs::metricsEnabled() && fused) {
        static auto &c = obs::counter(
            "isa.pass.gate_fusion.fused",
            "literal rotations merged away by gate fusion");
        c.add(fused);
    }
}

} // namespace qtenon::isa::pass
