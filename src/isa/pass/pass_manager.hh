/**
 * @file
 * The PassManager: an ordered, validated pipeline of compilation
 * passes over one CompileContext.
 *
 * Registration-time validation enforces the pipeline's dependency
 * discipline: a pass may only be added after every field it reads
 * has a producer earlier in the pipeline (the circuit and coupling
 * map count as inputs). Each pass run is wrapped in an obs latency
 * histogram (`isa.pass.<name>.latency_ns` — wall clock, excluded
 * from determinism digests by the `_ns` convention) and a trace
 * span, and the `--dump-after=<pass>` debug surface fires a dump
 * callback with the deterministic context dump after the named pass.
 */

#ifndef QTENON_ISA_PASS_PASS_MANAGER_HH
#define QTENON_ISA_PASS_PASS_MANAGER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pass.hh"

namespace qtenon::isa::pass {

/**
 * Process-global --dump-after selector: after the named pass runs,
 * every PassManager emits the context dump (to its callback, or to
 * stdout when none is set). Empty disables. Mirrors the
 * obs::setMetricsEnabled pattern so the shared bench CLI can wire
 * the flag without threading state through every binary.
 */
void setDumpAfter(std::string pass_name);
std::string dumpAfter();

class PassManager
{
  public:
    /** Receives (pass name, dump text) after the dump-after pass. */
    using DumpHook =
        std::function<void(const std::string &, const std::string &)>;

    PassManager();

    /**
     * Append @p p to the pipeline. Fatals when a field @p p reads
     * has no producer among the inputs (Circuit, Coupling) and the
     * passes registered so far — the ordering invariant.
     */
    void add(std::unique_ptr<Pass> p);

    /** Registered pass names joined with '|' (artifact metadata). */
    std::string description() const;

    bool hasPass(const std::string &name) const;
    std::size_t size() const { return _passes.size(); }

    /** Override the --dump-after destination (tests, artifacts). */
    void setDumpHook(DumpHook hook) { _dumpHook = std::move(hook); }

    /**
     * Run every pass in order over @p ctx. Fatals when the pipeline
     * never produced the Image field — a pipeline without a packing
     * pass compiles nothing.
     */
    void run(CompileContext &ctx) const;

  private:
    std::vector<std::unique_ptr<Pass>> _passes;
    /** Fields with a producer so far (inputs pre-seeded). */
    Field _produced =
        Field::Circuit | Field::Coupling | Field::ShardMap;
    DumpHook _dumpHook;
};

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_PASS_MANAGER_HH
