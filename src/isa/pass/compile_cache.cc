#include "compile_cache.hh"

#include <atomic>

#include "isa/instr_builder.hh"
#include "obs/metrics.hh"

namespace qtenon::isa {

namespace {

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::atomic<CompileCache *> g_processCache{nullptr};

} // namespace

std::string
imageBytes(const ProgramImage &image)
{
    std::string out;
    appendU64(out, image.numQubits);
    appendU64(out, image.perQubit.size());
    for (const auto &chunk : image.perQubit) {
        appendU64(out, chunk.size());
        for (const auto &e : chunk) {
            std::uint64_t lo = 0, hi = 0;
            e.pack(lo, hi);
            appendU64(out, lo);
            appendU64(out, hi);
        }
    }
    appendU64(out, image.paramToReg.size());
    for (auto r : image.paramToReg)
        appendU64(out, r);
    appendU64(out, image.regfileInit.size());
    for (auto v : image.regfileInit)
        appendU64(out, v);
    appendU64(out, image.links.size());
    for (const auto &l : image.links) {
        appendU64(out, l.reg);
        appendU64(out, l.qubit);
        appendU64(out, l.entry);
    }
    // Vector waves extend the serialization only when present, so
    // every scalar image keeps its historical byte stream.
    if (image.hasWaves()) {
        appendU64(out, image.updateWaves.size());
        for (const auto &w : image.updateWaves) {
            appendU64(out, w.baseReg);
            appendU64(out, w.stride);
            appendU64(out, w.count);
        }
        appendU64(out, image.genWaves.size());
        for (const auto &w : image.genWaves) {
            appendU64(out, w.baseQubit);
            appendU64(out, w.laneMask);
        }
    }
    return out;
}

CompileCache::CompileCache(std::size_t capacity) : _capacity(capacity)
{}

core::Digest128
CompileCache::keyOf(const quantum::QuantumCircuit &c,
                    const QtenonCompiler &compiler)
{
    std::string text = c.canonicalText(/*params_symbolic=*/true);
    text += "|pipe{";
    text += compiler.pipelineConfig().canonicalText();
    text += "}";
    return core::fnv1a128(text);
}

ProgramImage
CompileCache::compile(const quantum::QuantumCircuit &c,
                      const QtenonCompiler &compiler, bool *was_hit)
{
    if (was_hit)
        *was_hit = false;
    if (!enabled())
        return compiler.compile(c);

    static auto &hits = obs::counter(
        "isa.compile_cache.hits", "structural compiles skipped");
    static auto &misses = obs::counter(
        "isa.compile_cache.misses", "full pipeline compiles run");
    static auto &inserts = obs::counter(
        "isa.compile_cache.inserts", "structural images retained");
    static auto &evictions = obs::counter(
        "isa.compile_cache.evictions", "LRU structural evictions");
    static auto &entries_g = obs::gauge(
        "isa.compile_cache.entries", "live structural entries");

    const Key key = keyOf(c, compiler);

    std::shared_ptr<Slot> slot;
    bool computer = false;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _byKey.find(key);
        if (it == _byKey.end()) {
            slot = std::make_shared<Slot>();
            _byKey.emplace(key, slot);
            computer = true;
            ++_misses;
            misses.add(1);
        } else {
            slot = it->second;
            ++_hits;
            hits.add(1);
            auto pos = _lruPos.find(key);
            if (pos != _lruPos.end())
                _lru.splice(_lru.begin(), _lru, pos->second);
        }
    }

    if (computer) {
        // Single-flight: everyone else waiting on this key blocks on
        // the slot until the structural image is published.
        ProgramImage image = compiler.compile(c);
        {
            std::lock_guard<std::mutex> lock(slot->m);
            slot->structural = image;
            // The regfile contents are the parameter values — the
            // one part of the image that is *not* structural.
            slot->structural.regfileInit.clear();
            slot->ready = true;
        }
        slot->cv.notify_all();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            ++_inserts;
            inserts.add(1);
            _lruPos.emplace(key, _lru.insert(_lru.begin(), key));
            while (_lru.size() > _capacity) {
                const Key victim = _lru.back();
                _lru.pop_back();
                _lruPos.erase(victim);
                _byKey.erase(victim);
                ++_evictions;
                evictions.add(1);
            }
            entries_g.set(static_cast<std::int64_t>(_lru.size()));
        }
        return image;
    }

    ProgramImage image;
    {
        std::unique_lock<std::mutex> lock(slot->m);
        slot->cv.wait(lock, [&] { return slot->ready; });
        image = slot->structural;
    }
    // Refill the regfile from the circuit's current parameters: the
    // exact loop a cold compile runs, so hit and cold images are
    // byte-identical for the same circuit.
    image.regfileInit.reserve(c.numParameters());
    for (std::uint32_t p = 0; p < c.numParameters(); ++p)
        image.regfileInit.push_back(
            InstrBuilder::encodeParam(c.parameter(p)));
    if (was_hit)
        *was_hit = true;
    return image;
}

CompileCacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    CompileCacheStats s;
    s.hits = _hits;
    s.misses = _misses;
    s.inserts = _inserts;
    s.evictions = _evictions;
    s.entries = _lru.size();
    s.capacity = _capacity;
    return s;
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _lru.size();
}

CompileCache *
processCompileCache()
{
    return g_processCache.load(std::memory_order_acquire);
}

void
setProcessCompileCache(CompileCache *cache)
{
    g_processCache.store(cache, std::memory_order_release);
}

} // namespace qtenon::isa
