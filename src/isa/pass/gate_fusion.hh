/**
 * @file
 * GateFusion: merge adjacent literal rotations of the same type on
 * the same qubit into one gate, shrinking the .program image.
 *
 * Only *literal* angles fuse: a symbolic rotation's .program entry
 * carries a regfile slot reference, and fusing two slots would break
 * the one-slot-per-parameter q_update contract. Disabled by default
 * (the byte-stable configuration every paper figure runs under);
 * `PipelineConfig::fuseLiteralRotations` turns it on.
 */

#ifndef QTENON_ISA_PASS_GATE_FUSION_HH
#define QTENON_ISA_PASS_GATE_FUSION_HH

#include "pass.hh"

namespace qtenon::isa::pass {

class GateFusion : public Pass
{
  public:
    explicit GateFusion(bool enabled) : _enabled(enabled) {}

    const char *name() const override { return "gate-fusion"; }
    Field reads() const override { return Field::Circuit; }
    Field writes() const override { return Field::Circuit; }
    void run(CompileContext &ctx) const override;

    /** Gates removed by the last run (testing/metrics). */
    static std::uint64_t fuse(quantum::QuantumCircuit &c);

  private:
    bool _enabled;
};

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_GATE_FUSION_HH
