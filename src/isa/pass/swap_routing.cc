#include "swap_routing.hh"

#include <numeric>

#include "obs/metrics.hh"
#include "shard/partition.hh"
#include "sim/logging.hh"

namespace qtenon::isa::pass {

using quantum::CouplingMap;
using quantum::Gate;
using quantum::GateType;
using quantum::QuantumCircuit;

RoutingResult
routeCircuit(const QuantumCircuit &c, const CouplingMap &map)
{
    if (map.numQubits() < c.numQubits())
        sim::fatal("coupling map smaller than the circuit register");

    RoutingResult res;
    res.circuit = QuantumCircuit(map.numQubits());
    res.readoutMap.assign(c.numQubits(), 0);

    // Copy the parameter table so symbolic references stay valid.
    for (std::uint32_t p = 0; p < c.numParameters(); ++p)
        res.circuit.addParameter(c.parameter(p), c.parameterName(p));

    // layout[logical] = physical; placement[physical] = logical.
    std::vector<std::uint32_t> layout(map.numQubits());
    std::vector<std::uint32_t> placement(map.numQubits());
    for (std::uint32_t q = 0; q < map.numQubits(); ++q)
        layout[q] = placement[q] = q;

    auto emit_swap = [&](std::uint32_t pa, std::uint32_t pb) {
        // SWAP = CNOT(a,b) CNOT(b,a) CNOT(a,b).
        res.circuit.cnot(pa, pb);
        res.circuit.cnot(pb, pa);
        res.circuit.cnot(pa, pb);
        ++res.swapsInserted;
        std::swap(placement[pa], placement[pb]);
        layout[placement[pa]] = pa;
        layout[placement[pb]] = pb;
    };

    for (const auto &g : c.gates()) {
        if (g.type == GateType::Measure) {
            const auto phys = layout[g.qubit0];
            res.circuit.measure(phys);
            res.readoutMap[g.qubit0] = phys;
            continue;
        }
        if (!isTwoQubit(g.type)) {
            Gate out = g;
            out.qubit0 = out.qubit1 = layout[g.qubit0];
            if (isParameterized(g.type))
                res.circuit.rotation(g.type, out.qubit0, g.param);
            else
                res.circuit.gate(g.type, out.qubit0);
            continue;
        }

        // Two-qubit gate: swap operand 0 toward operand 1 until the
        // physical qubits are coupled.
        auto pa = layout[g.qubit0];
        auto pb = layout[g.qubit1];
        if (!map.connected(pa, pb)) {
            auto path = map.shortestPath(pa, pb);
            // Swap along the path, leaving one hop.
            for (std::size_t hop = 0; hop + 2 < path.size(); ++hop)
                emit_swap(path[hop], path[hop + 1]);
            pa = layout[g.qubit0];
            pb = layout[g.qubit1];
        }
        if (isParameterized(g.type))
            res.circuit.rotation2(g.type, pa, pb, g.param);
        else
            res.circuit.gate2(g.type, pa, pb);
    }

    res.finalLayout.assign(layout.begin(),
                           layout.begin() + c.numQubits());
    return res;
}

quantum::QuantumCircuit
withRestoredLayout(const RoutingResult &routing)
{
    auto c = routing.circuit;
    const auto phys = c.numQubits();
    // placement[physical] = logical qubit there, or ~0 for the
    // physical qubits no logical qubit ended on.
    std::vector<std::uint32_t> placement(phys, ~0u);
    std::vector<std::uint32_t> position(phys, ~0u);
    for (std::uint32_t q = 0; q < routing.finalLayout.size(); ++q) {
        placement[routing.finalLayout[q]] = q;
        position[q] = routing.finalLayout[q];
    }
    for (std::uint32_t q = 0;
         q < static_cast<std::uint32_t>(routing.finalLayout.size());
         ++q) {
        const auto p = position[q];
        if (p == q)
            continue;
        // Bring logical q home with one exact SWAP (three CNOTs).
        c.cnot(q, p);
        c.cnot(p, q);
        c.cnot(q, p);
        const auto displaced = placement[q];
        placement[q] = q;
        placement[p] = displaced;
        position[q] = q;
        if (displaced != ~0u)
            position[displaced] = p;
    }
    return c;
}

void
SwapRouting::run(CompileContext &ctx) const
{
    const auto *sm = ctx.shardMap;
    const bool sharded = sm && sm->numShards() > 1;
    if (sharded && ctx.coupling) {
        sim::fatal("swap-routing: an explicit coupling map and a "
                   "multi-chip shard map are mutually exclusive");
    }
    if (sharded) {
        // Route onto the partition-induced connectivity: all-to-all
        // within a shard, one coupler per shard boundary.
        const auto derived = sm->couplingMap();
        ctx.routing = routeCircuit(ctx.circuit, derived);
        ctx.circuit = ctx.routing.circuit;
        std::uint64_t cross = 0;
        for (const auto &g : ctx.circuit.gates())
            if (isTwoQubit(g.type) &&
                sm->crossShard(g.qubit0, g.qubit1))
                ++cross;
        ctx.routing.crossShardGates = cross;
        if (obs::metricsEnabled()) {
            if (ctx.routing.swapsInserted) {
                static auto &cs = obs::counter(
                    "isa.pass.swap_routing.swaps",
                    "SWAP gates inserted by routing");
                cs.add(ctx.routing.swapsInserted);
            }
            if (cross) {
                static auto &cx = obs::counter(
                    "isa.pass.swap_routing.cross_shard",
                    "routed two-qubit gates crossing a shard "
                    "boundary");
                cx.add(cross);
            }
        }
        return;
    }
    if (!ctx.coupling) {
        // All-to-all: identity layout, readout bit = logical qubit.
        const auto n = ctx.circuit.numQubits();
        ctx.routing.circuit = ctx.circuit;
        ctx.routing.swapsInserted = 0;
        ctx.routing.finalLayout.resize(n);
        std::iota(ctx.routing.finalLayout.begin(),
                  ctx.routing.finalLayout.end(), 0u);
        ctx.routing.readoutMap = ctx.routing.finalLayout;
        return;
    }
    ctx.routing = routeCircuit(ctx.circuit, *ctx.coupling);
    ctx.circuit = ctx.routing.circuit;
    if (obs::metricsEnabled() && ctx.routing.swapsInserted) {
        static auto &c = obs::counter(
            "isa.pass.swap_routing.swaps",
            "SWAP gates inserted by routing");
        c.add(ctx.routing.swapsInserted);
    }
}

} // namespace qtenon::isa::pass
