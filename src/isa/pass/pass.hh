/**
 * @file
 * The pass-manager compilation pipeline's shared vocabulary: the
 * CompileContext every pass reads/writes, the Field bitmask passes
 * use to declare their dependencies, and the Pass interface.
 *
 * Lowering a circuit to a Qtenon ProgramImage used to be a monolith
 * (the old QtenonCompiler::compile) with routing, scheduling, and
 * SLT concerns scattered across quantum/, controller/, and isa/.
 * Here each concern is one registered pass over one shared context;
 * the PassManager (pass_manager.hh) validates at registration time
 * that every field a pass reads has a producer earlier in the
 * pipeline, so illegal orderings fail fast instead of producing
 * silently wrong images.
 */

#ifndef QTENON_ISA_PASS_PASS_HH
#define QTENON_ISA_PASS_PASS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "quantum/circuit.hh"
#include "quantum/mapping.hh"

namespace qtenon::shard {
class ShardMap;
}

namespace qtenon::isa::pass {

/** Context fields a pass may declare as read or written. */
enum class Field : std::uint32_t {
    None = 0,
    /** The working circuit IR (fusion rewrites it in place). */
    Circuit = 1u << 0,
    /** The optional physical coupling map (pipeline input). */
    Coupling = 1u << 1,
    /** Routing products: routed circuit, swap count, layouts. */
    Routing = 1u << 2,
    /** The edge-colored layer schedule. */
    Schedule = 1u << 3,
    /** The SLT set-pressure analysis. */
    SltPlan = 1u << 4,
    /** The packed ProgramImage (the pipeline's output). */
    Image = 1u << 5,
    /** The optional multi-chip shard map (pipeline input). */
    ShardMap = 1u << 6,
};

constexpr Field
operator|(Field a, Field b)
{
    return static_cast<Field>(static_cast<std::uint32_t>(a) |
                              static_cast<std::uint32_t>(b));
}

constexpr Field
operator&(Field a, Field b)
{
    return static_cast<Field>(static_cast<std::uint32_t>(a) &
                              static_cast<std::uint32_t>(b));
}

constexpr bool
covers(Field have, Field want)
{
    return (static_cast<std::uint32_t>(have) &
            static_cast<std::uint32_t>(want)) ==
        static_cast<std::uint32_t>(want);
}

/** Output of routing one circuit onto a coupling map. */
struct RoutingResult {
    /** The routed circuit over physical qubits. */
    quantum::QuantumCircuit circuit{1};
    /** SWAPs inserted (each lowered to three CNOTs). */
    std::uint64_t swapsInserted = 0;
    /** logical qubit -> physical qubit after the full circuit. */
    std::vector<std::uint32_t> finalLayout;
    /** logical qubit -> physical readout bit for its measurement. */
    std::vector<std::uint32_t> readoutMap;
    /** Two-qubit gates in the routed circuit whose operands live on
     *  different shards (boundary-coupler traffic); 0 without a
     *  multi-chip shard map. */
    std::uint64_t crossShardGates = 0;
};

/** The edge-colored gate schedule (one color = one layer). */
struct LayerSchedule {
    /** Gate indices per layer; no two gates in a layer share a
     *  qubit, so a layer can fire in one pulse slot. */
    std::vector<std::vector<std::uint32_t>> layers;

    std::size_t depth() const { return layers.size(); }
};

/** SLT set-pressure analysis of the lowered parameter stream. */
struct SltLayoutPlan {
    /** Distinct static (type, data) pulse parameters. */
    std::uint64_t distinctStatic = 0;
    /** Program entries whose data is a regfile slot (dynamic). */
    std::uint64_t dynamicEntries = 0;
    /** Static parameters landing beyond an SLT set's way count —
     *  each predicts a capacity/conflict eviction to QSpace. */
    std::uint64_t predictedConflicts = 0;
    /** Static-parameter load per 7-bit SLT set index. */
    std::vector<std::uint32_t> setLoad;
};

/** The shared state one pipeline run threads through its passes. */
struct CompileContext {
    /** The working circuit; passes rewriting the IR replace it. */
    quantum::QuantumCircuit circuit{1};
    /** Optional coupling map (not owned); null = all-to-all. */
    const quantum::CouplingMap *coupling = nullptr;
    /** Optional multi-chip shard map (not owned); null or a single
     *  shard = the byte-stable single-controller lowering. Mutually
     *  exclusive with an explicit coupling map: the shard map
     *  *derives* the connectivity (ShardMap::couplingMap). */
    const shard::ShardMap *shardMap = nullptr;

    RoutingResult routing;
    LayerSchedule schedule;
    SltLayoutPlan sltPlan;
    ProgramImage image;
};

/** One registered compilation pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable kebab-case name (metrics, spans, --dump-after). */
    virtual const char *name() const = 0;

    /** Context fields this pass consumes. */
    virtual Field reads() const = 0;

    /** Context fields this pass produces or rewrites. */
    virtual Field writes() const = 0;

    virtual void run(CompileContext &ctx) const = 0;
};

/**
 * Deterministic textual dump of @p ctx (the --dump-after payload):
 * the working IR in canonical form plus whatever analyses have run.
 * Stable across runs and worker counts by construction — it contains
 * no pointers, wall times, or hashes of unstable state.
 */
std::string dumpText(const CompileContext &ctx);

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_PASS_HH
