/**
 * @file
 * VectorPacking: annotate the packed ProgramImage with q_update.v /
 * q_gen.v waves (the `--isa-vector` lowering).
 *
 * Wave formation rules: regfile slots are partitioned into
 * consecutive stride-1 waves of at most 64 lanes, in slot order;
 * qubits are chunked into consecutive 64-lane q_gen.v waves. The
 * pass only *annotates* — per-qubit entries, regfile init, and
 * links are untouched, so a vector image lowers byte-identically to
 * its scalar twin everywhere the waves are ignored.
 */

#ifndef QTENON_ISA_PASS_VECTOR_PACKING_HH
#define QTENON_ISA_PASS_VECTOR_PACKING_HH

#include "pass.hh"

namespace qtenon::isa::pass {

class VectorPacking : public Pass
{
  public:
    const char *name() const override { return "vector-packing"; }
    Field reads() const override { return Field::Image; }
    Field writes() const override { return Field::Image; }
    void run(CompileContext &ctx) const override;

    /** Annotate @p img with waves (idempotent). */
    static void annotate(ProgramImage &img);
};

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_VECTOR_PACKING_HH
