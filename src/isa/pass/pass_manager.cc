#include "pass_manager.hh"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>

#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace qtenon::isa::pass {

namespace {

std::mutex g_dumpAfterMutex;
std::string g_dumpAfter;

} // namespace

void
setDumpAfter(std::string pass_name)
{
    std::lock_guard<std::mutex> lock(g_dumpAfterMutex);
    g_dumpAfter = std::move(pass_name);
}

std::string
dumpAfter()
{
    std::lock_guard<std::mutex> lock(g_dumpAfterMutex);
    return g_dumpAfter;
}

std::string
dumpText(const CompileContext &ctx)
{
    std::string out;
    out += "circuit: ";
    out += ctx.circuit.canonicalText(true);
    out += "\ncoupling: ";
    out += ctx.coupling ? "constrained" : "all-to-all";
    out += "\nswaps: " + std::to_string(ctx.routing.swapsInserted);
    out += "\nlayers: " + std::to_string(ctx.schedule.depth());
    out += "\nslt: static=" +
        std::to_string(ctx.sltPlan.distinctStatic) +
        " dynamic=" + std::to_string(ctx.sltPlan.dynamicEntries) +
        " conflicts=" + std::to_string(ctx.sltPlan.predictedConflicts);
    out += "\nimage: qubits=" + std::to_string(ctx.image.numQubits) +
        " entries=" + std::to_string(ctx.image.totalEntries()) +
        " regs=" + std::to_string(ctx.image.regfileInit.size()) +
        " links=" + std::to_string(ctx.image.links.size());
    out += "\n";
    return out;
}

PassManager::PassManager() = default;

void
PassManager::add(std::unique_ptr<Pass> p)
{
    if (!covers(_produced, p->reads())) {
        sim::fatal("pass '", p->name(),
                   "' reads a field no earlier pass produces "
                   "(pipeline so far: ", description(), ")");
    }
    _produced = _produced | p->writes();
    _passes.push_back(std::move(p));
}

std::string
PassManager::description() const
{
    std::string out;
    for (const auto &p : _passes) {
        if (!out.empty())
            out.push_back('|');
        out += p->name();
    }
    return out;
}

bool
PassManager::hasPass(const std::string &name) const
{
    for (const auto &p : _passes) {
        if (name == p->name())
            return true;
    }
    return false;
}

void
PassManager::run(CompileContext &ctx) const
{
    const std::string dump_after = dumpAfter();
    for (const auto &p : _passes) {
        std::optional<obs::ScopedSpan> span;
        if (obs::tracingEnabled())
            span.emplace(std::string("isa.pass.") + p->name(),
                         "isa");
        if (obs::metricsEnabled()) {
            const auto t0 = std::chrono::steady_clock::now();
            p->run(ctx);
            const auto ns = std::chrono::duration_cast<
                std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0).count();
            obs::histogram(std::string("isa.pass.") + p->name() +
                               ".latency_ns",
                           "wall time of one pass run")
                .record(static_cast<std::uint64_t>(ns));
        } else {
            p->run(ctx);
        }
        if (!dump_after.empty() && dump_after == p->name()) {
            const std::string text = dumpText(ctx);
            if (_dumpHook) {
                _dumpHook(p->name(), text);
            } else {
                std::printf("--- dump-after %s ---\n%s", p->name(),
                            text.c_str());
            }
        }
    }
    if (!covers(_produced, Field::Image))
        sim::fatal("pipeline '", description(),
                   "' has no image-producing pass");
}

} // namespace qtenon::isa::pass
