#include "slt_layout.hh"

#include <set>

#include "controller/slt.hh"
#include "isa/instr_builder.hh"
#include "obs/metrics.hh"

namespace qtenon::isa::pass {

using controller::SkipLookupTable;

SltLayoutPlan
SltLayout::analyse(const quantum::QuantumCircuit &c,
                   std::uint32_t ways)
{
    SltLayoutPlan plan;
    plan.setLoad.assign(128, 0);
    // Distinct static parameters per SLT set. The SLT is per-qubit,
    // but the ansatz repeats the same angles across qubits, so the
    // per-set load of the distinct-parameter population is the
    // conservative (worst-qubit) pressure estimate.
    std::set<std::pair<std::uint8_t, std::uint32_t>> seen;
    for (const auto &g : c.gates()) {
        if (quantum::isParameterized(g.type) &&
            g.param.isSymbolic()) {
            plan.dynamicEntries +=
                quantum::isTwoQubit(g.type) ? 2 : 1;
            continue;
        }
        // Derive the (type, data) analysis key from the same entry
        // codec the emit pass uses, so the pressure estimate can
        // never drift from the packed image.
        const auto probe = quantum::isParameterized(g.type)
            ? InstrBuilder::literalEntry(g.type, c.resolveAngle(g))
            : InstrBuilder::literalEntry(g.type, 0.0);
        const auto type = probe.type;
        const auto data = quantum::isParameterized(g.type)
            ? probe.data
            : 0;
        if (!seen.insert({type, data}).second)
            continue;
        ++plan.distinctStatic;
        const auto set = SkipLookupTable::indexOf(type, data);
        if (++plan.setLoad[set] > ways)
            ++plan.predictedConflicts;
    }
    return plan;
}

void
SltLayout::run(CompileContext &ctx) const
{
    ctx.sltPlan = analyse(ctx.circuit, _ways);
    if (obs::metricsEnabled()) {
        static auto &conflicts = obs::counter(
            "isa.pass.slt_layout.predicted_conflicts",
            "static parameters overflowing an SLT set");
        conflicts.add(ctx.sltPlan.predictedConflicts);
    }
}

} // namespace qtenon::isa::pass
