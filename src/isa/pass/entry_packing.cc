#include "entry_packing.hh"

#include "isa/instr_builder.hh"

namespace qtenon::isa::pass {

ProgramImage
ProgramEntryPacking::pack(const quantum::QuantumCircuit &c)
{
    ProgramImage img;
    img.numQubits = c.numQubits();
    img.perQubit.resize(c.numQubits());
    img.paramToReg.assign(c.numParameters(), ~std::uint32_t(0));

    // One regfile slot per symbolic parameter, allocated in parameter
    // order so the optimizer can address slots directly.
    for (std::uint32_t p = 0; p < c.numParameters(); ++p) {
        img.paramToReg[p] = p;
        img.regfileInit.push_back(
            InstrBuilder::encodeParam(c.parameter(p)));
    }

    auto emit = [&](std::uint32_t qubit, const quantum::Gate &g) {
        controller::ProgramEntry e;
        if (quantum::isParameterized(g.type) && g.param.isSymbolic()) {
            e = InstrBuilder::symbolicEntry(
                g.type, img.paramToReg[g.param.index]);
            img.links.push_back(RegfileLink{
                e.data, qubit,
                static_cast<std::uint32_t>(img.perQubit[qubit].size())});
        } else {
            e = InstrBuilder::literalEntry(g.type, c.resolveAngle(g));
        }
        img.perQubit[qubit].push_back(e);
    };

    for (const auto &g : c.gates()) {
        // Two-qubit gates drive control pulses on both qubits.
        emit(g.qubit0, g);
        if (quantum::isTwoQubit(g.type))
            emit(g.qubit1, g);
    }
    return img;
}

void
ProgramEntryPacking::run(CompileContext &ctx) const
{
    ctx.image = pack(ctx.circuit);
}

} // namespace qtenon::isa::pass
