#include "vector_packing.hh"

#include "isa/encoding.hh"

namespace qtenon::isa::pass {

void
VectorPacking::annotate(ProgramImage &img)
{
    img.updateWaves.clear();
    img.genWaves.clear();

    // Regfile slots: consecutive stride-1 waves of <= 64 lanes.
    const auto slots =
        static_cast<std::uint32_t>(img.regfileInit.size());
    for (std::uint32_t base = 0; base < slots; base += vecMaxLanes) {
        UpdateWave w;
        w.baseReg = base;
        w.stride = 1;
        w.count = std::min<std::uint32_t>(vecMaxLanes, slots - base);
        img.updateWaves.push_back(w);
    }

    // Qubits: consecutive 64-lane q_gen.v waves.
    for (std::uint32_t base = 0; base < img.numQubits;
         base += vecMaxLanes) {
        GenWave w;
        w.baseQubit = base;
        w.laneMask = waveMask(
            0, std::min<std::uint32_t>(vecMaxLanes,
                                       img.numQubits - base));
        img.genWaves.push_back(w);
    }
}

void
VectorPacking::run(CompileContext &ctx) const
{
    annotate(ctx.image);
}

} // namespace qtenon::isa::pass
