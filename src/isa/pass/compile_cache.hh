/**
 * @file
 * The content-addressed structural compile cache.
 *
 * Key = core::fnv1a128 over the circuit IR in *parameters-symbolic*
 * canonical form (quantum::QuantumCircuit::canonicalText(true): the
 * parameter table contributes only its arity, literal angles their
 * exact bits) plus the pipeline configuration (fusion flag, coupling
 * map edges). Two circuits that differ only in symbolic parameter
 * values therefore share one key — exactly the repeat-submission
 * pattern of an optimizer loop, where dynamic incremental
 * compilation (paper Sec. 6.1) says a parameter change should cost
 * one q_update, not a recompile.
 *
 * Value = the *structural* ProgramImage: per-qubit 65-bit entry
 * chunks, the regfile assignment, and the invalidation links, with
 * `regfileInit` left empty. A hit re-derives regfileInit from the
 * circuit's current parameter table (one encodeAngle per slot — the
 * same loop a cold compile runs), so a cache-served image is byte-
 * identical to a cold compile of the same circuit by construction,
 * at any worker count.
 *
 * Determinism: lookups are single-flight — concurrent compiles of
 * the same key elect one computer, everyone else blocks and counts
 * a hit — so hit/miss/insert counters are identical at --jobs 1 and
 * --jobs 8. Bounded LRU over completed entries; only the modeled-
 * time-neutral CPU work is skipped (modeled host cycles are charged
 * by CompileMode, a pure function of the run's configuration, never
 * of runtime cache state — see runtime/policies.hh).
 */

#ifndef QTENON_ISA_PASS_COMPILE_CACHE_HH
#define QTENON_ISA_PASS_COMPILE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/hash.hh"
#include "isa/compiler.hh"

namespace qtenon::isa {

/**
 * Deterministic byte serialization of a ProgramImage (little-endian
 * fields, 65-bit entries via ProgramEntry::pack). Two images are
 * byte-identical iff every field compares equal — the compile
 * cache's auditable identity contract and the compile_sweep
 * artifact's image digest.
 */
std::string imageBytes(const ProgramImage &image);

/** Point-in-time cache accounting. */
struct CompileCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;

    double
    hitRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(hits) /
                static_cast<double>(total)
                     : 0.0;
    }
};

class CompileCache
{
  public:
    /** @param capacity max structural entries; 0 disables (every
     *  compile runs the full pipeline, nothing is retained). */
    explicit CompileCache(std::size_t capacity = 256);

    bool enabled() const { return _capacity > 0; }
    std::size_t capacity() const { return _capacity; }

    /** The structural content address of @p c under @p compiler's
     *  pipeline configuration. */
    static core::Digest128 keyOf(const quantum::QuantumCircuit &c,
                                 const QtenonCompiler &compiler);

    /**
     * Compile @p c through the cache: a structural hit skips the
     * pass pipeline and re-derives only the regfile contents from
     * the current parameter table. @p was_hit (optional) reports
     * which path served the image.
     */
    ProgramImage compile(const quantum::QuantumCircuit &c,
                         const QtenonCompiler &compiler,
                         bool *was_hit = nullptr);

    CompileCacheStats stats() const;
    std::size_t size() const;

  private:
    /** One structural entry; ready flips once, under the mutex. */
    struct Slot {
        std::mutex m;
        std::condition_variable cv;
        bool ready = false;
        ProgramImage structural;
    };

    using Key = core::Digest128;

    std::size_t _capacity;
    mutable std::mutex _mutex;
    std::map<Key, std::shared_ptr<Slot>> _byKey;
    /** Completed keys, most recent first (eviction order). */
    std::list<Key> _lru;
    std::map<Key, std::list<Key>::iterator> _lruPos;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _inserts = 0;
    std::uint64_t _evictions = 0;
};

/**
 * Process-global cache installed by the shared bench CLI's
 * `--compile-cache N` flag (null = none). VqaDriver consults it when
 * the DriverConfig carries no explicit cache, so every sweep binary
 * gets the flag without per-binary plumbing.
 */
CompileCache *processCompileCache();
void setProcessCompileCache(CompileCache *cache);

} // namespace qtenon::isa

#endif // QTENON_ISA_PASS_COMPILE_CACHE_HH
