/**
 * @file
 * ProgramEntryPacking: lower the (routed) circuit IR into the
 * per-qubit 65-bit .program entry lists, the regfile assignment for
 * symbolic parameters, and the regfile -> entry invalidation links —
 * the emit step absorbed from the old monolithic compiler, byte-for-
 * byte: every paper-figure image depends on this exact layout.
 */

#ifndef QTENON_ISA_PASS_ENTRY_PACKING_HH
#define QTENON_ISA_PASS_ENTRY_PACKING_HH

#include "pass.hh"

namespace qtenon::isa::pass {

class ProgramEntryPacking : public Pass
{
  public:
    const char *name() const override { return "entry-packing"; }
    Field reads() const override
    {
        return Field::Circuit | Field::Routing;
    }
    Field writes() const override { return Field::Image; }
    void run(CompileContext &ctx) const override;

    /** Pack @p c into a fresh image (the legacy compile loop). */
    static ProgramImage pack(const quantum::QuantumCircuit &c);
};

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_ENTRY_PACKING_HH
