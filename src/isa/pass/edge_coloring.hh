/**
 * @file
 * EdgeColoredScheduling: partition the gate list into layers such
 * that no two gates in a layer share a qubit — a greedy edge
 * coloring of the circuit's interaction multigraph, where each color
 * class is one parallel pulse slot. The layer count is the pulse-
 * level depth the controller sequences, and the analysis is recorded
 * in the context for downstream passes and the --dump-after surface.
 */

#ifndef QTENON_ISA_PASS_EDGE_COLORING_HH
#define QTENON_ISA_PASS_EDGE_COLORING_HH

#include "pass.hh"

namespace qtenon::isa::pass {

class EdgeColoredScheduling : public Pass
{
  public:
    const char *name() const override { return "edge-coloring"; }
    Field reads() const override
    {
        return Field::Circuit | Field::Routing;
    }
    Field writes() const override { return Field::Schedule; }
    void run(CompileContext &ctx) const override;

    /** Greedy ASAP layering of @p c (deterministic). */
    static LayerSchedule schedule(const quantum::QuantumCircuit &c);
};

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_EDGE_COLORING_HH
