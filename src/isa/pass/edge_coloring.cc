#include "edge_coloring.hh"

namespace qtenon::isa::pass {

LayerSchedule
EdgeColoredScheduling::schedule(const quantum::QuantumCircuit &c)
{
    LayerSchedule sched;
    // layer q's gates may start at; ASAP greedy is deterministic and
    // optimal for the chain-structured ansaetze the workloads build.
    std::vector<std::uint32_t> ready(c.numQubits(), 0);
    const auto &gates = c.gates();
    for (std::uint32_t i = 0; i < gates.size(); ++i) {
        const auto &g = gates[i];
        std::uint32_t layer = ready[g.qubit0];
        if (quantum::isTwoQubit(g.type))
            layer = std::max(layer, ready[g.qubit1]);
        if (layer >= sched.layers.size())
            sched.layers.resize(layer + 1);
        sched.layers[layer].push_back(i);
        ready[g.qubit0] = layer + 1;
        if (quantum::isTwoQubit(g.type))
            ready[g.qubit1] = layer + 1;
    }
    return sched;
}

void
EdgeColoredScheduling::run(CompileContext &ctx) const
{
    ctx.schedule = schedule(ctx.circuit);
}

} // namespace qtenon::isa::pass
