/**
 * @file
 * SwapRouting: the transpile step that makes a circuit legal on a
 * physically constrained chip (absorbed from quantum/mapping, which
 * now provides only the CouplingMap substrate).
 *
 * A greedy shortest-path router: walks the gate list, and for each
 * two-qubit gate on non-adjacent physical qubits swaps the first
 * operand along a BFS shortest path until adjacent (SWAP = three
 * CNOTs). With no coupling map configured — the paper's implicit
 * all-to-all assumption and the byte-stable default — the pass
 * records identity routing metadata and leaves the circuit alone.
 */

#ifndef QTENON_ISA_PASS_SWAP_ROUTING_HH
#define QTENON_ISA_PASS_SWAP_ROUTING_HH

#include "pass.hh"

namespace qtenon::isa::pass {

/**
 * Route @p c onto @p map (identity initial layout). Fatals when the
 * map has fewer qubits than the circuit register.
 */
RoutingResult routeCircuit(const quantum::QuantumCircuit &c,
                           const quantum::CouplingMap &map);

/**
 * The routed circuit of @p routing with SWAPs (three exact CNOTs
 * each) appended until every logical qubit sits back at its own
 * physical index. Because every kernel the router emits is an exact
 * amplitude permutation or a qubit-index-independent arithmetic op,
 * sampling the returned circuit is *bit-identical* to sampling the
 * unrouted circuit on the statevector backend — the identity the
 * sharding test harness is built on.
 */
quantum::QuantumCircuit withRestoredLayout(const RoutingResult &routing);

class SwapRouting : public Pass
{
  public:
    const char *name() const override { return "swap-routing"; }
    Field reads() const override
    {
        return Field::Circuit | Field::Coupling | Field::ShardMap;
    }
    Field writes() const override
    {
        return Field::Circuit | Field::Routing;
    }
    void run(CompileContext &ctx) const override;
};

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_SWAP_ROUTING_HH
