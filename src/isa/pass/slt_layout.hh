/**
 * @file
 * SltLayout: predict how the compiled parameter stream will land in
 * the controller's per-qubit Skip Lookup Tables (controller/slt.hh).
 *
 * Each static (type, quantized data) pulse parameter maps to one of
 * the SLT's 128 sets via SkipLookupTable::indexOf; a set loaded
 * beyond its way count predicts capacity evictions to QSpace on
 * first touch. Symbolic parameters are counted as dynamic — their
 * data field is a regfile slot whose contents change per q_update,
 * so their SLT behaviour depends on the optimizer trajectory, not
 * the layout. This is an analysis pass: it informs metrics and the
 * --dump-after surface without mutating the image.
 */

#ifndef QTENON_ISA_PASS_SLT_LAYOUT_HH
#define QTENON_ISA_PASS_SLT_LAYOUT_HH

#include "pass.hh"

namespace qtenon::isa::pass {

class SltLayout : public Pass
{
  public:
    explicit SltLayout(std::uint32_t ways = 2) : _ways(ways) {}

    const char *name() const override { return "slt-layout"; }
    Field reads() const override
    {
        return Field::Circuit | Field::Routing;
    }
    Field writes() const override { return Field::SltPlan; }
    void run(CompileContext &ctx) const override;

    /** Analyse @p c against an SLT with @p ways ways per set. */
    static SltLayoutPlan analyse(const quantum::QuantumCircuit &c,
                                 std::uint32_t ways);

  private:
    std::uint32_t _ways;
};

} // namespace qtenon::isa::pass

#endif // QTENON_ISA_PASS_SLT_LAYOUT_HH
