/**
 * @file
 * Static quantum-dedicated ISA models for the decoupled baselines
 * (paper Sec. 2.3 / Table 1): eQASM-like and HiSEP-Q-like.
 *
 * These ISAs encode the qubit index into every instruction and lack
 * communication support, so each optimizer round recompiles the full
 * circuit just-in-time and ships the whole binary to the FPGA.
 */

#ifndef QTENON_ISA_BASELINE_ISA_HH
#define QTENON_ISA_BASELINE_ISA_HH

#include <cstdint>

#include "quantum/circuit.hh"
#include "sim/types.hh"

namespace qtenon::isa {

/** Which decoupled ISA to model. */
enum class BaselineFlavor {
    /** eQASM: per-gate instruction + explicit timing instruction. */
    EQasm,
    /** HiSEP-Q: denser qubit encoding, fewer timing instructions. */
    HisepQ,
};

/** Cost model of the baseline JIT compile path. */
struct BaselineCompileCost {
    /** Fixed per-round framework overhead (circuit build, transpile
     *  bookkeeping). The paper's Fig. 13 and Fig. 15 imply different
     *  baseline compile costs (sub-ms vs ~10 ms per round); this
     *  default sits between them - see EXPERIMENTS.md. */
    sim::Tick fixedPerCompile = 2500 * sim::usTicks;
    /** Marginal transpile + assemble cost per native gate. */
    sim::Tick perNativeGate = 1 * sim::usTicks;
};

/** The baseline static compiler model. */
class BaselineCompiler
{
  public:
    explicit BaselineCompiler(
        BaselineFlavor flavor = BaselineFlavor::HisepQ,
        BaselineCompileCost cost = BaselineCompileCost{})
        : _flavor(flavor), _cost(cost)
    {}

    BaselineFlavor flavor() const { return _flavor; }
    const BaselineCompileCost &cost() const { return _cost; }

    /**
     * Native gates after decomposition to the superconducting set
     * (1q rotations + CZ): RZZ -> 2 CNOT + 1 RZ, CNOT -> H CZ H.
     */
    std::uint64_t nativeGateCount(const quantum::QuantumCircuit &c) const;

    /** Static instructions for one compiled circuit. */
    std::uint64_t instructionCount(const quantum::QuantumCircuit &c) const;

    /** Binary size shipped over the link each round. */
    std::uint64_t binaryBytes(const quantum::QuantumCircuit &c) const;

    /** JIT recompilation time for one round. */
    sim::Tick jitCompileTime(const quantum::QuantumCircuit &c) const;

  private:
    BaselineFlavor _flavor;
    BaselineCompileCost _cost;
};

} // namespace qtenon::isa

#endif // QTENON_ISA_BASELINE_ISA_HH
