/**
 * @file
 * The Qtenon compiler (paper Sec. 6.1).
 *
 * Treats the quantum program as computable data: each gate becomes a
 * .program entry in the chunk of every qubit it drives; symbolic
 * parameters get a .regfile slot and the entry's reg_flag, so
 * *dynamic incremental compilation* reduces a parameter change to a
 * single q_update instead of a full recompile.
 *
 * Lowering runs through a registered pass pipeline (isa/pass/): gate
 * fusion, SWAP routing, edge-colored layer scheduling, SLT layout
 * analysis, and program-entry packing, each individually testable
 * and timed. At the default PipelineConfig (no fusion, no coupling
 * constraint) the pipeline reproduces the historical monolithic
 * emit byte-for-byte.
 */

#ifndef QTENON_ISA_COMPILER_HH
#define QTENON_ISA_COMPILER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pass/pass_manager.hh"
#include "program.hh"
#include "quantum/circuit.hh"
#include "sim/types.hh"

namespace qtenon::quantum {
class CouplingMap;
}

namespace qtenon::shard {
class ShardMap;
}

namespace qtenon::isa {

/** Host-side compile cost model (cycles on the host core). */
struct CompilerCostModel {
    /** Initial compile: cycles per emitted .program entry. */
    double cyclesPerEntry = 30.0;
    /** Fixed front-end cost per compile. */
    double fixedCycles = 2000.0;
    /** Incremental path: cycles per q_update prepared. */
    double cyclesPerUpdate = 12.0;
    /** Cached path: key hash + cache lookup, charged instead of the
     *  front-end fixedCycles when the structural image is served
     *  from the compile cache. */
    double cacheLookupCycles = 200.0;
    /** Vector path: fixed cycles to prepare one q_update.v /
     *  q_gen.v (wave bookkeeping + element-vector header). */
    double cyclesPerVectorInstr = 14.0;
    /** Vector path: cycles per packed element appended to the
     *  q_update.v value vector. */
    double cyclesPerVectorElement = 1.0;
};

/**
 * Everything that changes what the pass pipeline emits for a given
 * circuit. Part of the compile-cache key: two compiles may share a
 * cached image only if their PipelineConfig canonical texts match.
 */
struct PipelineConfig {
    /** Merge runs of same-axis literal rotations (off by default —
     *  paper-figure images are defined on the unfused stream). */
    bool fuseLiteralRotations = false;
    /** Physical connectivity to route onto; null = all-to-all (the
     *  paper's implicit assumption, no SWAPs inserted). Not owned. */
    const quantum::CouplingMap *coupling = nullptr;
    /** Multi-chip shard map; SWAPs are routed through shard-boundary
     *  couplers when it has more than one shard. Null or a single
     *  shard keeps the byte-stable single-controller lowering (and
     *  the historical cache key). Mutually exclusive with an
     *  explicit coupling map. Not owned. */
    const shard::ShardMap *shardMap = nullptr;
    /** Append the vector-packing pass, annotating images with
     *  q_update.v / q_gen.v waves (`--isa-vector`). Off keeps the
     *  byte-stable scalar lowering and the historical cache key. */
    bool vectorIsa = false;

    /** Deterministic text form for cache keying. Multi-shard maps
     *  append a `;shard={...}` segment, so cached images never leak
     *  across partitions; single-shard/absent maps add nothing
     *  (their lowering is identical by construction). The vector-ISA
     *  flag likewise appends `;vector=1` only when set, so every
     *  historical scalar key survives unchanged. */
    std::string canonicalText() const;
};

/** One planned q_update: (regfile slot, encoded value). */
using UpdatePlan = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/** Instruction-count breakdown for a whole VQA run (Table 1). */
struct InstructionCount {
    std::uint64_t qSet = 0;
    std::uint64_t qUpdate = 0;
    std::uint64_t qAcquire = 0;
    std::uint64_t qGen = 0;
    std::uint64_t qRun = 0;
    /** Vector forms (`--isa-vector` lowering only). */
    std::uint64_t qUpdateV = 0;
    std::uint64_t qGenV = 0;

    std::uint64_t
    total() const
    {
        return qSet + qUpdate + qAcquire + qGen + qRun + qUpdateV +
            qGenV;
    }
};

/** The compiler. */
class QtenonCompiler
{
  public:
    explicit QtenonCompiler(CompilerCostModel cost = CompilerCostModel{},
                            PipelineConfig pipe = PipelineConfig{})
        : _cost(cost), _pipe(pipe)
    {}

    const CompilerCostModel &costModel() const { return _cost; }
    const PipelineConfig &pipelineConfig() const { return _pipe; }

    /** Compile @p c into a program image via the pass pipeline. */
    ProgramImage compile(const quantum::QuantumCircuit &c) const;

    /**
     * The registered lowering pipeline for this compiler's config:
     * gate-fusion | swap-routing | edge-coloring | slt-layout |
     * entry-packing. Exposed so tools can attach dump hooks or run
     * it over a caller-owned CompileContext.
     */
    pass::PassManager buildPipeline() const;

    /** '|'-joined pass names (recorded in artifacts). */
    std::string pipelineDescription() const;

    /**
     * Plan the q_updates needed to move the installed image from
     * @p old_params to @p new_params (indices parallel the circuit's
     * parameter table). Only changed parameters are updated.
     */
    UpdatePlan planUpdates(const ProgramImage &image,
                           const std::vector<double> &old_params,
                           const std::vector<double> &new_params) const;

    /** Host cycles for the initial compile of @p image. */
    double initialCompileCycles(const ProgramImage &image) const;

    /** Host cycles to prepare @p plan incremental updates. */
    double incrementalCycles(std::size_t num_updates) const;

    /**
     * Host cycles to prepare a vector round: @p num_waves q_update.v
     * instructions carrying @p num_elements packed values in total
     * (plus the q_gen.v per wave, folded into the per-instr cost).
     */
    double incrementalCyclesVector(std::size_t num_waves,
                                   std::size_t num_elements) const;

    /**
     * Host cycles for a compile served from the structural cache:
     * the front-end fixed cost plus one update-path refill per
     * regfile slot — the per-entry emit work is skipped entirely.
     */
    double cachedCompileCycles(const ProgramImage &image) const;

    /**
     * Qtenon instruction count for a full VQA run: one q_set per
     * qubit chunk up front, then per round @p updates_per_round
     * q_updates plus q_gen + q_run + q_acquire.
     */
    static InstructionCount countInstructions(
        const ProgramImage &image, std::uint64_t rounds,
        std::uint64_t updates_per_round,
        std::uint64_t acquires_per_round = 1);

    /**
     * Vector-ISA instruction count for the same run shape: the
     * per-round q_updates collapse to one q_update.v per touched
     * wave and q_gen to one q_gen.v per wave. Requires an image
     * annotated by the vector-packing pass; falls back to the scalar
     * count otherwise.
     */
    static InstructionCount countInstructionsVector(
        const ProgramImage &image, std::uint64_t rounds,
        std::uint64_t updates_per_round,
        std::uint64_t acquires_per_round = 1);

  private:
    CompilerCostModel _cost;
    PipelineConfig _pipe;
};

} // namespace qtenon::isa

#endif // QTENON_ISA_COMPILER_HH
