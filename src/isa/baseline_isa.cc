#include "baseline_isa.hh"

namespace qtenon::isa {

using quantum::GateType;

std::uint64_t
BaselineCompiler::nativeGateCount(const quantum::QuantumCircuit &c) const
{
    std::uint64_t n = 0;
    for (const auto &g : c.gates()) {
        switch (g.type) {
          case GateType::RZZ:
            // CNOT RZ CNOT, each CNOT as H CZ H: 2*3 + 1 = 7 native.
            n += 7;
            break;
          case GateType::CNOT:
            n += 3; // H CZ H
            break;
          case GateType::I:
            break;
          default:
            n += 1;
            break;
        }
    }
    return n;
}

std::uint64_t
BaselineCompiler::instructionCount(const quantum::QuantumCircuit &c) const
{
    const auto native = nativeGateCount(c);
    switch (_flavor) {
      case BaselineFlavor::EQasm:
        // One gate instruction plus roughly one timing/wait
        // instruction per gate.
        return native * 2;
      case BaselineFlavor::HisepQ:
        // Denser encoding amortizes timing control: ~1.2 instr/gate.
        return native + (native + 4) / 5;
    }
    return native;
}

std::uint64_t
BaselineCompiler::binaryBytes(const quantum::QuantumCircuit &c) const
{
    // 32-bit instruction words.
    return instructionCount(c) * 4;
}

sim::Tick
BaselineCompiler::jitCompileTime(const quantum::QuantumCircuit &c) const
{
    return _cost.fixedPerCompile +
        _cost.perNativeGate * nativeGateCount(c);
}

} // namespace qtenon::isa
