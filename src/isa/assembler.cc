#include "assembler.hh"

#include <algorithm>
#include <sstream>

namespace qtenon::isa {

std::uint64_t
InstructionStream::count(Opcode op) const
{
    std::uint64_t n = 0;
    for (const auto &o : ops) {
        if (o.instruction.funct7 == op)
            ++n;
    }
    return n;
}

InstructionStream
QtenonAssembler::assembleInstall(const ProgramImage &image,
                                 std::uint64_t host_base) const
{
    InstructionStream s;

    // Initialize every regfile slot.
    for (std::size_t r = 0; r < image.regfileInit.size(); ++r) {
        s.ops.push_back(_builder.qUpdate(
            QAddr(_layout.regfileAddr(static_cast<std::uint32_t>(r))),
            image.regfileInit[r]));
    }

    // One q_set per qubit chunk.
    std::uint64_t host = host_base;
    for (std::uint32_t q = 0; q < image.numQubits; ++q) {
        const auto entries = image.perQubit[q].size();
        s.ops.push_back(_builder.qSet(CAddr(host), entries,
                                      QAddr(_layout.programAddr(q, 0))));
        host += entries * 12;
    }

    // Initial full pulse generation.
    s.ops.push_back(_builder.qGen());
    return s;
}

InstructionStream
QtenonAssembler::assembleRound(const UpdatePlan &plan,
                               std::uint64_t shots,
                               std::uint64_t acquire_dest,
                               std::uint64_t acquire_entries) const
{
    InstructionStream s;
    for (const auto &[reg, value] : plan) {
        s.ops.push_back(_builder.qUpdate(
            QAddr(_layout.regfileAddr(reg)), value));
    }
    s.ops.push_back(_builder.qGen());
    s.ops.push_back(_builder.qRun(shots));
    s.ops.push_back(_builder.qAcquire(CAddr(acquire_dest),
                                      acquire_entries,
                                      QAddr(_layout.measureAddr(0))));
    return s;
}

InstructionStream
QtenonAssembler::assembleRoundVector(const ProgramImage &image,
                                     const UpdatePlan &plan,
                                     std::uint64_t shots,
                                     std::uint64_t acquire_dest,
                                     std::uint64_t acquire_entries,
                                     std::uint64_t values_base) const
{
    if (!image.hasWaves())
        return assembleRound(plan, shots, acquire_dest,
                             acquire_entries);

    InstructionStream s;
    // One q_update.v per wave the plan touches, spanning the wave's
    // changed slots (interior untouched slots ride along: the
    // element vector refills them with their current values).
    std::uint64_t values_off = 0;
    for (const auto &wave : image.updateWaves) {
        std::uint32_t lo = ~std::uint32_t(0), hi = 0;
        for (const auto &[reg, value] : plan) {
            (void)value;
            if (!wave.contains(reg))
                continue;
            lo = std::min(lo, reg);
            hi = std::max(hi, reg);
        }
        if (lo > hi)
            continue; // untouched wave
        const std::uint32_t count = (hi - lo) / wave.stride + 1;
        s.ops.push_back(_builder.qUpdateV(
            QAddr(_layout.regfileAddr(lo)), wave.stride, count,
            CAddr(values_base + values_off)));
        values_off += std::uint64_t(count) * 4;
    }
    if (!plan.empty()) {
        for (const auto &wave : image.genWaves)
            s.ops.push_back(_builder.qGenV(wave.baseQubit,
                                           WaveMask(wave.laneMask)));
    } else {
        s.ops.push_back(_builder.qGen());
    }
    s.ops.push_back(_builder.qRun(shots));
    s.ops.push_back(_builder.qAcquire(CAddr(acquire_dest),
                                      acquire_entries,
                                      QAddr(_layout.measureAddr(0))));
    return s;
}

std::string
QtenonAssembler::disassemble(const AssembledOp &op)
{
    std::ostringstream os;
    os << opcodeName(op.instruction.funct7);
    switch (op.instruction.funct7) {
      case Opcode::QUpdate:
        os << " qaddr=0x" << std::hex << op.rs1Value << ", data=0x"
           << op.rs2Value;
        break;
      case Opcode::QSet:
      case Opcode::QAcquire:
        os << " caddr=0x" << std::hex << op.rs1Value << ", len="
           << std::dec << lengthOf(op.rs2Value) << ", qaddr=0x"
           << std::hex << qaddrOf(op.rs2Value);
        break;
      case Opcode::QUpdateV:
        os << " base=0x" << std::hex << vecBaseOf(op.rs1Value)
           << ", stride=" << std::dec << vecStrideOf(op.rs1Value)
           << ", count=" << vecCountOf(op.rs1Value) << ", caddr=0x"
           << std::hex << op.rs2Value;
        break;
      case Opcode::QGenV:
        os << " base_qubit=" << std::dec << op.rs1Value
           << ", lanes=0x" << std::hex << op.rs2Value;
        break;
      case Opcode::QRun:
        os << " shots=" << std::dec << op.rs1Value;
        break;
      case Opcode::QGen:
        break;
    }
    return os.str();
}

std::string
QtenonAssembler::disassemble(const InstructionStream &s)
{
    std::ostringstream os;
    for (const auto &op : s.ops)
        os << disassemble(op) << "\n";
    return os.str();
}

} // namespace qtenon::isa
