#include "assembler.hh"

#include <sstream>

namespace qtenon::isa {

std::uint64_t
InstructionStream::count(Opcode op) const
{
    std::uint64_t n = 0;
    for (const auto &o : ops) {
        if (o.instruction.funct7 == op)
            ++n;
    }
    return n;
}

AssembledOp
QtenonAssembler::makeOp(Opcode op, std::uint64_t rs1,
                        std::uint64_t rs2, bool uses_rs1,
                        bool uses_rs2) const
{
    AssembledOp a;
    a.instruction.funct7 = op;
    a.instruction.rs1 = uses_rs1 ? _abi.addrReg : 0;
    a.instruction.rs2 = uses_rs2 ? _abi.lenReg : 0;
    a.instruction.xs1 = uses_rs1;
    a.instruction.xs2 = uses_rs2;
    a.rs1Value = rs1;
    a.rs2Value = rs2;
    return a;
}

InstructionStream
QtenonAssembler::assembleInstall(const ProgramImage &image,
                                 std::uint64_t host_base) const
{
    InstructionStream s;

    // Initialize every regfile slot.
    for (std::size_t r = 0; r < image.regfileInit.size(); ++r) {
        s.ops.push_back(makeOp(
            Opcode::QUpdate,
            _layout.regfileAddr(static_cast<std::uint32_t>(r)),
            image.regfileInit[r], true, true));
    }

    // One q_set per qubit chunk.
    std::uint64_t host = host_base;
    for (std::uint32_t q = 0; q < image.numQubits; ++q) {
        const auto entries = image.perQubit[q].size();
        s.ops.push_back(makeOp(
            Opcode::QSet, host,
            packLengthQaddr(entries, _layout.programAddr(q, 0)), true,
            true));
        host += entries * 12;
    }

    // Initial full pulse generation.
    s.ops.push_back(makeOp(Opcode::QGen, 0, 0, false, false));
    return s;
}

InstructionStream
QtenonAssembler::assembleRound(const UpdatePlan &plan,
                               std::uint64_t shots,
                               std::uint64_t acquire_dest,
                               std::uint64_t acquire_entries) const
{
    InstructionStream s;
    for (const auto &[reg, value] : plan) {
        s.ops.push_back(makeOp(Opcode::QUpdate,
                               _layout.regfileAddr(reg), value, true,
                               true));
    }
    s.ops.push_back(makeOp(Opcode::QGen, 0, 0, false, false));
    s.ops.push_back(makeOp(Opcode::QRun, shots, 0, true, false));
    s.ops.push_back(makeOp(
        Opcode::QAcquire, acquire_dest,
        packLengthQaddr(acquire_entries, _layout.measureAddr(0)), true,
        true));
    return s;
}

std::string
QtenonAssembler::disassemble(const AssembledOp &op)
{
    std::ostringstream os;
    os << opcodeName(op.instruction.funct7);
    switch (op.instruction.funct7) {
      case Opcode::QUpdate:
        os << " qaddr=0x" << std::hex << op.rs1Value << ", data=0x"
           << op.rs2Value;
        break;
      case Opcode::QSet:
      case Opcode::QAcquire:
        os << " caddr=0x" << std::hex << op.rs1Value << ", len="
           << std::dec << lengthOf(op.rs2Value) << ", qaddr=0x"
           << std::hex << qaddrOf(op.rs2Value);
        break;
      case Opcode::QRun:
        os << " shots=" << std::dec << op.rs1Value;
        break;
      case Opcode::QGen:
        break;
    }
    return os.str();
}

std::string
QtenonAssembler::disassemble(const InstructionStream &s)
{
    std::ostringstream os;
    for (const auto &op : s.ops)
        os << disassemble(op) << "\n";
    return os.str();
}

} // namespace qtenon::isa
