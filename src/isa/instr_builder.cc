#include "instr_builder.hh"

#include "sim/logging.hh"

namespace qtenon::isa {

using controller::EntryStatus;
using controller::ProgramEntry;

AssembledOp
InstrBuilder::make(Opcode op, std::uint64_t rs1, std::uint64_t rs2,
                   bool uses_rs1, bool uses_rs2) const
{
    AssembledOp a;
    a.instruction.funct7 = op;
    a.instruction.rs1 = uses_rs1 ? _abi.addrReg : 0;
    a.instruction.rs2 = uses_rs2 ? _abi.lenReg : 0;
    a.instruction.xs1 = uses_rs1;
    a.instruction.xs2 = uses_rs2;
    a.rs1Value = rs1;
    a.rs2Value = rs2;
    return a;
}

AssembledOp
InstrBuilder::qUpdate(QAddr qaddr, std::uint64_t data) const
{
    if (qaddr.value >> qaddrFieldBits)
        sim::panic("q_update QAddress 0x", std::hex, qaddr.value,
                   " exceeds ", std::dec, qaddrFieldBits, " bits");
    return make(Opcode::QUpdate, qaddr.value, data, true, true);
}

AssembledOp
InstrBuilder::qSet(CAddr src, std::uint64_t entries, QAddr dst) const
{
    return make(Opcode::QSet, src.value,
                packLengthQaddr(entries, dst.value), true, true);
}

AssembledOp
InstrBuilder::qAcquire(CAddr dst, std::uint64_t entries,
                       QAddr src) const
{
    return make(Opcode::QAcquire, dst.value,
                packLengthQaddr(entries, src.value), true, true);
}

AssembledOp
InstrBuilder::qGen() const
{
    return make(Opcode::QGen, 0, 0, false, false);
}

AssembledOp
InstrBuilder::qRun(std::uint64_t shots) const
{
    return make(Opcode::QRun, shots, 0, true, false);
}

AssembledOp
InstrBuilder::qUpdateV(QAddr base, std::uint32_t stride,
                       std::uint32_t count, CAddr values) const
{
    if (stride == 0 || stride > vecMaxStride)
        sim::panic("q_update.v stride ", stride, " outside [1, ",
                   vecMaxStride, "]");
    if (count == 0 || count > vecMaxCount)
        sim::panic("q_update.v count ", count, " outside [1, ",
                   vecMaxCount, "]");
    if (base.value >> qaddrFieldBits)
        sim::panic("q_update.v base 0x", std::hex, base.value,
                   " exceeds ", std::dec, qaddrFieldBits, " bits");
    return make(Opcode::QUpdateV,
                packVecStride(base.value, stride, count),
                values.value, true, true);
}

AssembledOp
InstrBuilder::qGenV(std::uint32_t base_qubit, WaveMask lanes) const
{
    if (lanes.bits == 0)
        sim::panic("q_gen.v with an empty lane mask");
    return make(Opcode::QGenV, base_qubit, lanes.bits, true, true);
}

ProgramEntry
InstrBuilder::symbolicEntry(quantum::GateType t, std::uint32_t reg)
{
    ProgramEntry e;
    e.type = ProgramEntry::encodeType(t);
    e.status = EntryStatus::Invalid;
    e.regFlag = true;
    e.data = reg;
    return e;
}

ProgramEntry
InstrBuilder::literalEntry(quantum::GateType t, double angle)
{
    ProgramEntry e;
    e.type = ProgramEntry::encodeType(t);
    e.status = EntryStatus::Invalid;
    e.regFlag = false;
    e.data = ProgramEntry::encodeAngle(angle);
    return e;
}

} // namespace qtenon::isa
