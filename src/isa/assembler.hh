/**
 * @file
 * The Qtenon assembler: lowers a compiled program image and an
 * optimizer round into the literal RoCC instruction stream a host
 * binary would contain, and disassembles streams back to text.
 *
 * This is the code-generation layer the paper's modified RISC-V GNU
 * toolchain provides; it also backs Table 1's instruction counting
 * with real streams rather than closed-form estimates.
 */

#ifndef QTENON_ISA_ASSEMBLER_HH
#define QTENON_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler.hh"
#include "encoding.hh"
#include "memory/address_map.hh"
#include "program.hh"

namespace qtenon::isa {

/**
 * One emitted instruction with its operand register *values* (the
 * surrounding integer code that loads them is not modeled).
 */
struct AssembledOp {
    RoccInstruction instruction;
    std::uint64_t rs1Value = 0;
    std::uint64_t rs2Value = 0;
};

/** A complete instruction stream. */
struct InstructionStream {
    std::vector<AssembledOp> ops;

    std::size_t size() const { return ops.size(); }

    /** Count ops with the given opcode. */
    std::uint64_t count(Opcode op) const;

    /** Encoded size in bytes (32-bit instructions). */
    std::uint64_t bytes() const { return ops.size() * 4; }
};

/** Register conventions used by the emitted streams. */
struct AssemblerAbi {
    std::uint8_t addrReg = 10;  // x10: classical address
    std::uint8_t lenReg = 11;   // x11: {length, QAddress}
    std::uint8_t qaddrReg = 12; // x12: QAddress
    std::uint8_t dataReg = 13;  // x13: data / parameter
    std::uint8_t shotReg = 14;  // x14: shot count
};

/** Lowers images and rounds to instruction streams. */
class QtenonAssembler
{
  public:
    QtenonAssembler(memory::QccLayout layout,
                    AssemblerAbi abi = AssemblerAbi{})
        : _layout(layout), _abi(abi)
    {}

    const memory::QccLayout &layout() const { return _layout; }

    /**
     * The one-time installation stream: a q_update per regfile slot
     * and a q_set per qubit chunk, followed by the initial q_gen.
     */
    InstructionStream assembleInstall(const ProgramImage &image,
                                      std::uint64_t host_base) const;

    /**
     * One optimizer round: q_updates for the plan, then
     * q_gen / q_run(shots) / q_acquire(dest).
     */
    InstructionStream assembleRound(const UpdatePlan &plan,
                                    std::uint64_t shots,
                                    std::uint64_t acquire_dest,
                                    std::uint64_t acquire_entries) const;

    /** Render one op as assembly text. */
    static std::string disassemble(const AssembledOp &op);

    /** Render a whole stream, one instruction per line. */
    static std::string disassemble(const InstructionStream &s);

  private:
    AssembledOp makeOp(Opcode op, std::uint64_t rs1,
                       std::uint64_t rs2, bool uses_rs1,
                       bool uses_rs2) const;

    memory::QccLayout _layout;
    AssemblerAbi _abi;
};

} // namespace qtenon::isa

#endif // QTENON_ISA_ASSEMBLER_HH
