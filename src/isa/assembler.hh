/**
 * @file
 * The Qtenon assembler: lowers a compiled program image and an
 * optimizer round into the literal RoCC instruction stream a host
 * binary would contain, and disassembles streams back to text.
 *
 * This is the code-generation layer the paper's modified RISC-V GNU
 * toolchain provides; it also backs Table 1's instruction counting
 * with real streams rather than closed-form estimates.
 */

#ifndef QTENON_ISA_ASSEMBLER_HH
#define QTENON_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler.hh"
#include "encoding.hh"
#include "instr_builder.hh"
#include "memory/address_map.hh"
#include "program.hh"

namespace qtenon::isa {

/** A complete instruction stream. */
struct InstructionStream {
    std::vector<AssembledOp> ops;

    std::size_t size() const { return ops.size(); }

    /** Count ops with the given opcode. */
    std::uint64_t count(Opcode op) const;

    /** Encoded size in bytes (32-bit instructions). */
    std::uint64_t bytes() const { return ops.size() * 4; }
};

/** Lowers images and rounds to instruction streams. */
class QtenonAssembler
{
  public:
    QtenonAssembler(memory::QccLayout layout,
                    AssemblerAbi abi = AssemblerAbi{})
        : _layout(layout), _builder(abi)
    {}

    const memory::QccLayout &layout() const { return _layout; }
    const InstrBuilder &builder() const { return _builder; }

    /**
     * The one-time installation stream: a q_update per regfile slot
     * and a q_set per qubit chunk, followed by the initial q_gen.
     */
    InstructionStream assembleInstall(const ProgramImage &image,
                                      std::uint64_t host_base) const;

    /**
     * One optimizer round: q_updates for the plan, then
     * q_gen / q_run(shots) / q_acquire(dest).
     */
    InstructionStream assembleRound(const UpdatePlan &plan,
                                    std::uint64_t shots,
                                    std::uint64_t acquire_dest,
                                    std::uint64_t acquire_entries) const;

    /**
     * One optimizer round in vector form: the plan's updates are
     * grouped into the image's waves — one q_update.v per touched
     * wave, one q_gen.v per touched wave — then q_run / q_acquire as
     * in the scalar round. @p image must carry updateWaves (compiled
     * with PipelineConfig::vectorIsa); falls back to the scalar
     * round otherwise.
     */
    InstructionStream
    assembleRoundVector(const ProgramImage &image,
                        const UpdatePlan &plan, std::uint64_t shots,
                        std::uint64_t acquire_dest,
                        std::uint64_t acquire_entries,
                        std::uint64_t values_base = 0x3000'0000ull)
        const;

    /** Render one op as assembly text. */
    static std::string disassemble(const AssembledOp &op);

    /** Render a whole stream, one instruction per line. */
    static std::string disassemble(const InstructionStream &s);

  private:
    memory::QccLayout _layout;
    InstrBuilder _builder;
};

} // namespace qtenon::isa

#endif // QTENON_ISA_ASSEMBLER_HH
