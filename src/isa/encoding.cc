#include "encoding.hh"

#include "sim/logging.hh"

namespace qtenon::isa {

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::QUpdate: return "q_update";
      case Opcode::QSet: return "q_set";
      case Opcode::QAcquire: return "q_acquire";
      case Opcode::QUpdateV: return "q_update.v";
      case Opcode::QGen: return "q_gen";
      case Opcode::QRun: return "q_run";
      case Opcode::QGenV: return "q_gen.v";
    }
    sim::panic("unknown opcode");
}

std::uint32_t
RoccInstruction::encode() const
{
    // RoCC layout: funct7 | rs2 | rs1 | xd | xs1 | xs2 | rd | opcode
    //              [31:25]  [24:20] [19:15] 14   13    12  [11:7] [6:0]
    std::uint32_t w = roccCustom0 & 0x7F;
    w |= (std::uint32_t(rd) & 0x1F) << 7;
    w |= (xs2 ? 1u : 0u) << 12;
    w |= (xs1 ? 1u : 0u) << 13;
    w |= (xd ? 1u : 0u) << 14;
    w |= (std::uint32_t(rs1) & 0x1F) << 15;
    w |= (std::uint32_t(rs2) & 0x1F) << 20;
    w |= (std::uint32_t(static_cast<std::uint8_t>(funct7)) & 0x7F)
        << 25;
    return w;
}

RoccInstruction
RoccInstruction::decode(std::uint32_t word)
{
    if ((word & 0x7F) != roccCustom0)
        sim::fatal("not a RoCC custom-0 instruction: 0x", std::hex,
                   word);
    RoccInstruction i;
    i.rd = (word >> 7) & 0x1F;
    i.xs2 = (word >> 12) & 0x1;
    i.xs1 = (word >> 13) & 0x1;
    i.xd = (word >> 14) & 0x1;
    i.rs1 = (word >> 15) & 0x1F;
    i.rs2 = (word >> 20) & 0x1F;
    i.funct7 = static_cast<Opcode>((word >> 25) & 0x7F);
    return i;
}

} // namespace qtenon::isa
