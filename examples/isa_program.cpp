/**
 * @file
 * Low-level ISA walkthrough: build a tiny quantum program by hand,
 * encode the actual RoCC instruction words for one optimizer round
 * (q_set / q_update / q_gen / q_run / q_acquire), and drive the
 * controller directly - the view a systems programmer gets below the
 * VQA runtime.
 */

#include <cstdio>

#include "core/qtenon_system.hh"
#include "isa/encoding.hh"

using namespace qtenon;

int
main()
{
    core::QtenonConfig cfg;
    cfg.numQubits = 8;
    core::QtenonSystem sys(cfg);
    auto &ctrl = sys.controller();
    const auto &layout = ctrl.config().layout;

    // ---- 1. Hand-build a two-gate program for qubit 0:
    // RY(theta) with theta living in regfile slot 0, then a measure.
    std::vector<controller::ProgramEntry> prog;
    {
        controller::ProgramEntry ry;
        ry.type = controller::ProgramEntry::encodeType(
            quantum::GateType::RY);
        ry.regFlag = true;
        ry.data = 0; // regfile slot
        prog.push_back(ry);

        controller::ProgramEntry m;
        m.type = controller::ProgramEntry::encodeType(
            quantum::GateType::Measure);
        prog.push_back(m);
    }

    // ---- 2. Encode the instruction words the host would issue.
    std::printf("instruction stream for one round:\n");
    auto show = [](const char *asm_text, isa::RoccInstruction i) {
        std::printf("  0x%08x  %s\n", i.encode(), asm_text);
    };
    isa::RoccInstruction qset;
    qset.funct7 = isa::Opcode::QSet;
    qset.rs1 = 10; // x10 = host address of the serialized program
    qset.rs2 = 11; // x11 = {length, QAddress}
    qset.xs1 = qset.xs2 = true;
    show("q_set   x10, x11        # program -> .program[q0]", qset);

    isa::RoccInstruction qupd;
    qupd.funct7 = isa::Opcode::QUpdate;
    qupd.rs1 = 12; // x12 = regfile QAddress
    qupd.rs2 = 13; // x13 = new encoded angle
    qupd.xs1 = qupd.xs2 = true;
    show("q_update x12, x13       # theta -> .regfile[0]", qupd);

    isa::RoccInstruction qgen;
    qgen.funct7 = isa::Opcode::QGen;
    show("q_gen                   # compute pulses", qgen);

    isa::RoccInstruction qrun;
    qrun.funct7 = isa::Opcode::QRun;
    qrun.rs1 = 14; // x14 = shot count
    qrun.xs1 = true;
    show("q_run   x14             # execute shots", qrun);

    isa::RoccInstruction qacq;
    qacq.funct7 = isa::Opcode::QAcquire;
    qacq.rs1 = 15;
    qacq.rs2 = 16;
    qacq.xs1 = qacq.xs2 = true;
    show("q_acquire x15, x16      # .measure -> host memory", qacq);

    // The rs2 register value for q_set per Fig. 8(b):
    const auto rs2 = isa::packLengthQaddr(prog.size(),
                                          layout.programAddr(0, 0));
    std::printf("\nx11 = 0x%llx (length %llu, QAddress 0x%llx)\n",
                (unsigned long long)rs2,
                (unsigned long long)isa::lengthOf(rs2),
                (unsigned long long)isa::qaddrOf(rs2));

    // ---- 3. Execute the semantics of that stream on the model.
    auto &eq = sys.eventQueue();

    ctrl.dmaSetProgram(0x10000, 0, prog, [](sim::Tick t) {
        std::printf("\nq_set complete at %.0f ns\n",
                    sim::ticksToNs(t));
    });
    eq.run();

    ctrl.linkRegfile(0, layout.programAddr(0, 0));
    const auto angle = controller::ProgramEntry::encodeAngle(1.234);
    ctrl.roccWrite(layout.regfileAddr(0), angle);
    std::printf("q_update wrote encoded angle 0x%x\n", angle);

    ctrl.generateAll([](const controller::PipelineResult &r,
                        sim::Tick t) {
        std::printf("q_gen: %llu pulses in %llu cycles, done at "
                    "%.0f ns\n",
                    (unsigned long long)r.pulsesGenerated,
                    (unsigned long long)r.cycles, sim::ticksToNs(t));
    });
    eq.run();

    // q_run: record four shots' readouts, then q_acquire them.
    for (std::uint32_t s = 0; s < 4; ++s)
        ctrl.recordMeasurement(s, s % 2);
    ctrl.dmaAcquire(0x20000, 0, 4, [&](sim::Tick t) {
        std::printf("q_acquire complete at %.0f ns\n",
                    sim::ticksToNs(t));
    });
    eq.run();

    std::printf("barrier query on destination: %s\n",
                ctrl.barrierQuery(0x20000, 32) ? "synced"
                                               : "not synced");

    // Read a result back over the RoCC path.
    std::uint64_t word = 0;
    ctrl.roccRead(layout.measureAddr(1), word);
    std::printf("measure[1] read over RoCC = %llu\n",
                (unsigned long long)word);
    return 0;
}
