/**
 * @file
 * VQE for molecular ground states: find the H2 ground-state energy
 * (2-qubit reduced Hamiltonian, known answer ~= -1.857 Ha) with a
 * hardware-efficient ansatz on the Qtenon system, then show the same
 * flow on a larger synthetic molecule.
 */

#include <cstdio>

#include "core/qtenon_system.hh"
#include "quantum/molecule.hh"
#include "quantum/statevector.hh"

using namespace qtenon;

namespace {

/** Exact energy of the circuit's current state under @p h. */
double
exactEnergy(const quantum::QuantumCircuit &c,
            const quantum::Hamiltonian &h)
{
    quantum::StateVector sv(c.numQubits());
    sv.applyCircuit(c);
    return h.expectation(sv);
}

} // namespace

int
main()
{
    // ---- Part 1: H2, where the answer is known.
    std::printf("VQE on H2 (2-qubit reduced Hamiltonian)\n");
    std::printf("reference ground-state energy: -1.8573 Ha\n\n");

    auto h2 = quantum::h2();
    vqa::WorkloadConfig wcfg;
    wcfg.algorithm = vqa::Algorithm::Vqe;
    wcfg.numQubits = 2;
    wcfg.vqeLayers = 2;
    auto workload = vqa::Workload::build(wcfg);

    core::QtenonConfig qcfg;
    qcfg.numQubits = 2;
    core::QtenonSystem sys(qcfg);

    vqa::DriverConfig dcfg;
    dcfg.iterations = 60;
    dcfg.shots = 800;
    dcfg.optimizer = vqa::OptimizerKind::GradientDescent;
    dcfg.seed = 11;
    // Evaluate all Hamiltonian terms (incl. X0X1) exactly, as an
    // experiment measuring every required basis would.
    dcfg.useExactCost = true;
    auto result = sys.runVqa(workload, dcfg);

    const double energy = exactEnergy(workload.circuit, h2);
    std::printf("energy after %u GD iterations: %.4f Ha "
                "(exact state evaluation)\n",
                dcfg.iterations, energy);
    std::printf("sampled-cost trajectory: first %.4f -> last %.4f\n",
                result.trace.costHistory.front(),
                result.trace.costHistory.back());

    // ---- Part 2: a 16-spin-orbital synthetic molecule.
    std::printf("\nVQE on a synthetic 16-spin-orbital molecule\n");
    auto mol = quantum::syntheticMolecule(16);
    std::printf("Hamiltonian: %zu Pauli terms + offset %.3f\n",
                mol.numTerms(), mol.identityOffset());

    vqa::WorkloadConfig wcfg16;
    wcfg16.algorithm = vqa::Algorithm::Vqe;
    wcfg16.numQubits = 16;
    auto workload16 = vqa::Workload::build(wcfg16);

    core::QtenonConfig qcfg16;
    qcfg16.numQubits = 16;
    core::QtenonSystem sys16(qcfg16);

    vqa::DriverConfig dcfg16;
    dcfg16.iterations = 10;
    dcfg16.shots = 500;
    dcfg16.optimizer = vqa::OptimizerKind::Spsa;
    auto result16 = sys16.runVqa(workload16, dcfg16);

    std::printf("diagonal-energy estimate: first %.4f -> best %.4f\n",
                result16.trace.costHistory.front(),
                *std::min_element(result16.trace.costHistory.begin(),
                                  result16.trace.costHistory.end()));
    const auto bd = result16.timing.total();
    std::printf("modeled wall %.2f ms; quantum %.1f%%, pulse %.1f%%, "
                "comm %.2f%%, host %.1f%%\n",
                sim::ticksToMs(bd.wall), bd.percent(bd.quantum),
                bd.percent(bd.pulseGen), bd.percent(bd.comm),
                bd.percent(bd.host));
    return 0;
}
