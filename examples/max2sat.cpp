/**
 * @file
 * Hybrid MAX-2-SAT: the paper's intro motivates hybrid quantum-
 * classical acceleration of SAT problems (HyQSAT). This example maps
 * a random 2-CNF formula to its Ising Hamiltonian, optimizes a
 * QAOA-style ansatz over it with SPSA, and samples assignments -
 * reporting solution quality against brute force and the modeled
 * Qtenon hardware activity behind the run.
 */

#include <algorithm>
#include <cstdio>

#include "core/experiment.hh"
#include "quantum/sat.hh"
#include "quantum/sampler.hh"
#include "vqa/cost.hh"
#include "vqa/optimizer.hh"

using namespace qtenon;

int
main()
{
    sim::Rng rng(314);
    const std::uint32_t vars = 10;
    auto formula = quantum::Max2Sat::random(vars, 24, rng);
    const auto optimum = formula.bestSatisfiableBruteForce();
    std::printf("MAX-2-SAT: %u variables, %zu clauses, brute-force "
                "optimum = %llu satisfied\n",
                vars, formula.numClauses(),
                static_cast<unsigned long long>(optimum));

    auto circuit = formula.ansatz(3);
    auto ising = formula.toIsing();
    vqa::HamiltonianCost cost(ising);

    // SPSA over the sampled Ising energy (violated-clause count).
    quantum::StatevectorSampler sampler(20);
    vqa::Spsa spsa(0.35, 0.2, 42);
    std::vector<double> params(circuit.numParameters(), 0.1);
    auto oracle = [&](const std::vector<double> &p) {
        circuit.setParameters(p);
        auto shots = sampler.sample(circuit, 500, rng);
        return cost.fromShots(shots);
    };

    std::printf("\noptimizing (energy = expected violated clauses):\n");
    for (int it = 0; it < 25; ++it) {
        const double e = spsa.iterate(params, oracle);
        if (it % 5 == 0 || it == 24)
            std::printf("  iter %2d: energy %.3f\n", it, e);
    }

    // Sample assignments from the trained circuit.
    circuit.setParameters(params);
    auto shots = sampler.sample(circuit, 4000, rng);
    std::uint64_t best = 0;
    double mean = 0;
    for (auto a : shots) {
        const auto sat = formula.satisfiedCount(a);
        best = std::max(best, sat);
        mean += static_cast<double>(sat);
    }
    mean /= static_cast<double>(shots.size());
    std::printf("\nsampled assignments: mean %.2f satisfied, best "
                "%llu / %llu (%s)\n",
                mean, static_cast<unsigned long long>(best),
                static_cast<unsigned long long>(optimum),
                best == optimum ? "optimal" : "suboptimal");

    // Model the hardware cost of the same loop on Qtenon.
    core::QtenonConfig qcfg;
    qcfg.numQubits = vars;
    core::QtenonSystem sys(qcfg);
    isa::QtenonCompiler compiler;
    auto image = compiler.compile(circuit);
    auto setup = sys.executor().installProgram(image);
    const auto shot_dur = sys.shotDuration(circuit);

    runtime::RoundRecord round;
    round.shots = 500;
    round.postOpsPerShot = cost.opsPerShot();
    round.optimizerOps = 50;
    // Each SPSA iteration is two evaluation rounds; all parameters
    // change every round.
    for (std::uint32_t p = 0; p < circuit.numParameters(); ++p)
        round.updates.emplace_back(p, 1000 + p);
    runtime::TimeBreakdown rounds;
    for (int r = 0; r < 50; ++r)
        rounds += sys.executor().executeRound(round, image, shot_dur);

    std::printf("\nmodeled Qtenon time: setup %s + 50 rounds %s "
                "(quantum %.1f%%)\n",
                core::formatTime(setup.wall).c_str(),
                core::formatTime(rounds.wall).c_str(),
                rounds.percent(rounds.quantum));
    return 0;
}
