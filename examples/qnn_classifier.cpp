/**
 * @file
 * QNN training: a 4-qubit quantum classifier trained on a small
 * synthetic two-class dataset. Each epoch evaluates every sample's
 * circuit (angle encoding + trainable Ry/CZ block) and updates the
 * shared weights by SPSA; the Qtenon runtime replays the per-sample
 * rounds so the example also reports the modeled hardware time of
 * one training run.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/qtenon_system.hh"
#include "quantum/ansatz.hh"
#include "quantum/sampler.hh"

using namespace qtenon;

namespace {

struct Sample {
    std::vector<double> features;
    int label; // 0 or 1
};

/** Two separable clusters in feature space. */
std::vector<Sample>
makeDataset(sim::Rng &rng, std::size_t per_class)
{
    std::vector<Sample> data;
    for (std::size_t i = 0; i < per_class; ++i) {
        data.push_back({{0.4 + 0.1 * rng.normal(),
                         0.5 + 0.1 * rng.normal(),
                         0.4 + 0.1 * rng.normal(),
                         0.5 + 0.1 * rng.normal()},
                        0});
        data.push_back({{2.2 + 0.1 * rng.normal(),
                         2.3 + 0.1 * rng.normal(),
                         2.2 + 0.1 * rng.normal(),
                         2.1 + 0.1 * rng.normal()},
                        1});
    }
    return data;
}

/** P(readout qubit = 1) for a sample under the given weights. */
double
predict(const Sample &s, const std::vector<double> &weights)
{
    auto c = quantum::ansatz::qnn(4, s.features, 2, false);
    c.setParameters(weights);
    quantum::StatevectorSampler sampler;
    return sampler.marginalOne(c, 0);
}

/** Mean squared loss over the dataset. */
double
datasetLoss(const std::vector<Sample> &data,
            const std::vector<double> &weights)
{
    double loss = 0.0;
    for (const auto &s : data) {
        const double p = predict(s, weights);
        const double d = p - static_cast<double>(s.label);
        loss += d * d;
    }
    return loss / static_cast<double>(data.size());
}

} // namespace

int
main()
{
    sim::Rng rng(2025);
    auto train = makeDataset(rng, 8);
    auto test = makeDataset(rng, 4);

    // The trainable block of the QNN has 2 layers x 4 qubits = 8
    // shared weights.
    auto probe = quantum::ansatz::qnn(4, train[0].features, 2, false);
    std::vector<double> weights(probe.numParameters(), 0.2);

    std::printf("QNN classifier: 4 qubits, %zu weights, %zu training "
                "samples\n\n",
                weights.size(), train.size());

    vqa::Spsa spsa(0.4, 0.25, 99);
    auto oracle = [&](const std::vector<double> &w) {
        return datasetLoss(train, w);
    };

    const int epochs = 40;
    for (int e = 0; e < epochs; ++e) {
        const double loss = spsa.iterate(weights, oracle);
        if (e % 8 == 0 || e == epochs - 1)
            std::printf("epoch %2d: training loss %.4f\n", e, loss);
    }

    // Accuracy on held-out samples.
    int correct = 0;
    for (const auto &s : test) {
        const int pred = predict(s, weights) > 0.5 ? 1 : 0;
        correct += (pred == s.label) ? 1 : 0;
    }
    std::printf("\ntest accuracy: %d / %zu\n", correct, test.size());

    // Model the hardware cost of the same training run on Qtenon:
    // every epoch evaluates each sample twice (SPSA), and each
    // evaluation is one quantum round of 300 shots.
    vqa::WorkloadConfig wcfg;
    wcfg.algorithm = vqa::Algorithm::Qnn;
    wcfg.numQubits = 4;
    auto workload = vqa::Workload::build(wcfg);

    core::QtenonConfig qcfg;
    qcfg.numQubits = 4;
    core::QtenonSystem sys(qcfg);
    vqa::DriverConfig dcfg;
    dcfg.iterations = epochs;
    dcfg.shots = 300;
    dcfg.optimizer = vqa::OptimizerKind::Spsa;
    auto result = sys.runVqa(workload, dcfg);
    const auto bd = result.timing.total();
    std::printf("\nmodeled Qtenon time for one training run: %.2f ms "
                "(quantum %.1f%%)\n",
                sim::ticksToMs(bd.wall) *
                    static_cast<double>(train.size()),
                bd.percent(bd.quantum));
    return 0;
}
