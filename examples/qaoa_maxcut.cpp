/**
 * @file
 * QAOA MAX-CUT end to end: optimize a 10-node 3-regular instance on
 * the modeled Qtenon system, then check the sampled cut quality
 * against the brute-force optimum and print the hardware activity
 * (SLT hit rate, pulses generated, bus traffic) behind the run.
 */

#include <cstdio>

#include "core/qtenon_system.hh"
#include "quantum/sampler.hh"

int
main()
{
    using namespace qtenon;

    const std::uint32_t n = 10;
    auto graph = quantum::Graph::threeRegular(n);
    const auto optimum = graph.maxCutBruteForce();
    std::printf("MAX-CUT on a 3-regular graph, %u nodes, %zu edges; "
                "brute-force optimum = %llu\n",
                n, graph.numEdges(),
                static_cast<unsigned long long>(optimum));

    // Build the workload and the system.
    vqa::WorkloadConfig wcfg;
    wcfg.algorithm = vqa::Algorithm::Qaoa;
    wcfg.numQubits = n;
    wcfg.qaoaLayers = 3;
    auto workload = vqa::Workload::build(wcfg);

    core::QtenonConfig qcfg;
    qcfg.numQubits = n;
    core::QtenonSystem sys(qcfg);

    vqa::DriverConfig dcfg;
    dcfg.iterations = 8;
    dcfg.shots = 600;
    dcfg.optimizer = vqa::OptimizerKind::GradientDescent;
    auto result = sys.runVqa(workload, dcfg);

    std::printf("\noptimization trajectory (mean cut value):\n");
    for (std::size_t i = 0; i < result.trace.costHistory.size(); ++i) {
        std::printf("  iter %2zu: %.3f\n", i + 1,
                    -result.trace.costHistory[i]);
    }

    // Sample the trained circuit and report the best observed cut.
    quantum::StatevectorSampler sampler(20);
    sim::Rng rng(123);
    auto shots = sampler.sample(workload.circuit, 2000, rng);
    std::uint64_t best = 0;
    double mean = 0.0;
    for (auto s : shots) {
        const auto cut = graph.cutValue(s);
        best = std::max(best, cut);
        mean += static_cast<double>(cut);
    }
    mean /= static_cast<double>(shots.size());
    std::printf("\ntrained circuit: mean cut %.2f, best sampled cut "
                "%llu / %llu optimal (%.0f%%)\n",
                mean, static_cast<unsigned long long>(best),
                static_cast<unsigned long long>(optimum),
                100.0 * static_cast<double>(best) /
                    static_cast<double>(optimum));

    // Hardware activity behind the run.
    const auto &slt = sys.controller().slt();
    const double lookups = static_cast<double>(slt.hits + slt.misses);
    std::printf("\ncontroller activity:\n");
    std::printf("  pulses generated : %.0f\n",
                sys.controller().pulsesGenerated.value());
    std::printf("  SLT hit rate     : %.1f%% (%llu hits, %llu "
                "misses, %llu evictions)\n",
                lookups > 0 ? 100.0 * slt.hits / lookups : 0.0,
                static_cast<unsigned long long>(slt.hits),
                static_cast<unsigned long long>(slt.misses),
                static_cast<unsigned long long>(slt.evictions));
    std::printf("  bus transactions : %.0f (%.0f beats)\n",
                sys.bus().transactions.value(),
                sys.bus().beats.value());
    std::printf("  q_updates issued : %llu across %zu rounds\n",
                static_cast<unsigned long long>(
                    result.trace.totalUpdates()),
                result.trace.rounds.size());

    const auto bd = result.timing.total();
    std::printf("\nmodeled wall time %.2f ms (quantum %.1f%%)\n",
                sim::ticksToMs(bd.wall), bd.percent(bd.quantum));
    return 0;
}
