/**
 * @file
 * Batch experiment service quickstart: build an 8-job sweep (2
 * algorithms x 2 optimizers x 2 sizes) with the Sweep builder, fan
 * it out on a BatchScheduler worker pool, then read the aggregated
 * ResultsStore and the scheduler's own wall-clock metrics, and
 * export everything as JSON.
 *
 *   ./build/examples/batch_sweep            # QTENON_JOBS or all cores
 *   QTENON_JOBS=2 ./build/examples/batch_sweep
 *
 * Jobs derive their RNG streams from their job ids, so the printed
 * costs (and the JSON) are bit-identical for any worker count.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "service/batch_scheduler.hh"
#include "service/sweep.hh"

using namespace qtenon;

int
main()
{
    // 1. Describe the sweep: 2 x 2 x 2 = 8 jobs. Small shapes keep
    //    this example quick; bench/fig11_gd_speedup runs the paper's
    //    full 24-point cross-product the same way.
    auto jobs =
        service::Sweep("demo")
            .algorithms({vqa::Algorithm::Qaoa, vqa::Algorithm::Vqe})
            .optimizers({vqa::OptimizerKind::GradientDescent,
                         vqa::OptimizerKind::Spsa})
            .qubits({6, 8})
            .shots(100)
            .iterations(4)
            .seed(7)
            .build();
    std::printf("sweep expands to %zu jobs\n", jobs.size());

    // 2. Run them on the worker pool (QTENON_JOBS env overrides).
    service::BatchScheduler sched;
    auto handles = sched.submitAll(std::move(jobs));

    // Futures give per-job access the moment each finishes ...
    const auto first = handles.front().result.get();
    std::printf("first job '%s' finished: cost %.3f after %llu "
                "rounds\n",
                first.name.c_str(), first.finalCost,
                static_cast<unsigned long long>(first.rounds));

    // ... and wait() returns the aggregated, job-id-ordered store.
    auto &store = sched.wait();

    std::printf("\n%-16s %8s %10s %12s %12s %10s\n", "job", "status",
                "final", "sim ticks", "wall [ms]", "e2e wall");
    for (const auto &r : store.sorted()) {
        std::printf("%-16s %8s %10.3f %12llu %12.1f %10s\n",
                    r.name.c_str(),
                    service::jobStatusName(r.status), r.finalCost,
                    static_cast<unsigned long long>(r.simTicks),
                    static_cast<double>(r.wallNs) / 1e6,
                    core::formatTime(
                        r.systems.at(0).total.wall).c_str());
    }

    // 3. The scheduler accounts its own parallelism.
    const auto m = sched.metrics();
    std::printf("\n%zu jobs on %u workers: batch wall %.2f s, "
                "serial-equivalent %.2f s, speedup %.2fx\n",
                m.completed, m.workers,
                static_cast<double>(m.batchWallNs) / 1e9,
                static_cast<double>(m.totalJobWallNs) / 1e9,
                m.speedup());

    // 4. JSON export round-trips through ResultsStore::fromJson.
    const auto json = store.toJsonString();
    const auto reread = service::ResultsStore::fromJsonString(json);
    std::printf("JSON export: %zu bytes, %zu results after "
                "re-import, digests %s\n",
                json.size(), reread.size(),
                reread.deterministicDigest() ==
                        store.deterministicDigest()
                    ? "match" : "DIFFER");
    return 0;
}
