/**
 * @file
 * Quickstart: optimize an 8-qubit QAOA MAX-CUT instance on the
 * modeled Qtenon system and compare against the decoupled baseline.
 *
 * Demonstrates the three layers of the public API:
 *   1. vqa::Workload      - build a benchmark circuit + cost function
 *   2. core::QtenonSystem - the assembled tightly-coupled system
 *   3. core::compareSystems - run both systems from one trace
 */

#include <cstdio>

#include "core/experiment.hh"
#include "quantum/ansatz.hh"
#include "quantum/draw.hh"

int
main()
{
    using namespace qtenon;

    core::ComparisonConfig cfg;
    cfg.workload.algorithm = vqa::Algorithm::Qaoa;
    cfg.workload.numQubits = 8;
    cfg.driver.iterations = 5;
    cfg.driver.shots = 500;
    cfg.driver.optimizer = vqa::OptimizerKind::GradientDescent;

    std::printf("Qtenon quickstart: 8-qubit QAOA MAX-CUT, "
                "5 GD iterations, 500 shots\n\n");

    // A taste of the circuit being run (first columns only).
    {
        auto g = quantum::Graph::threeRegular(4);
        auto preview = quantum::ansatz::qaoaMaxCut(g, 1);
        std::printf("1-layer QAOA on 4 qubits, for illustration:\n%s\n",
                    quantum::draw(preview, 10).c_str());
    }

    auto cmp = core::compareSystems(cfg);

    std::printf("cost history (negated mean cut value):\n");
    for (std::size_t i = 0; i < cmp.trace.costHistory.size(); ++i) {
        std::printf("  iter %zu: %.3f\n", i + 1,
                    cmp.trace.costHistory[i]);
    }

    std::printf("\nrounds executed: %zu, q_updates issued: %llu\n",
                cmp.trace.rounds.size(),
                static_cast<unsigned long long>(
                    cmp.trace.totalUpdates()));
    std::printf("one shot takes %s on the quantum chip\n\n",
                core::formatTime(cmp.shotDuration).c_str());

    auto report = [](const char *name,
                     const runtime::TimeBreakdown &bd) {
        std::printf("%-10s wall %-12s quantum %5.1f%%  pulse %5.1f%%  "
                    "comm %5.1f%%  host %5.1f%%\n",
                    name, core::formatTime(bd.wall).c_str(),
                    bd.percent(bd.quantum), bd.percent(bd.pulseGen),
                    bd.percent(bd.comm), bd.percent(bd.host));
    };
    report("baseline", cmp.baseline);
    report("qtenon", cmp.qtenon);

    std::printf("\nend-to-end speedup: %.1fx, classical speedup: "
                "%.1fx\n",
                cmp.endToEndSpeedup(), cmp.classicalSpeedup());
    return 0;
}
